"""Gray-failure tolerance: degraded detection, speculation, fencing.

``repro.tail`` is the layer that survives *slow-but-alive* — the failure
class :mod:`repro.recovery` deliberately refuses to act on.  PR 8's quorum
detector adapts its per-link thresholds so a ``Straggler``-slowed locality
or a ``LinkDegradation``-delayed link is never declared dead; correct, but
it means a 10x-slow node silently inflates the tail with no mitigation.
One :class:`TailManager` per :class:`repro.dist.DistRuntime` (created only
when ``DistConfig.tail`` is set — ``None`` leaves the runtime bit-identical
to the pre-tail code) runs three machines on the shared virtual clock:

**1. Quantile-based gray-failure detection.**  Every heartbeat arrival
(:meth:`note_heartbeat_gap`, called from the recovery manager's receive
path) records the observed gap as a ratio of the nominal period into a
per-locality :class:`repro.tail.sketch.QuantileSketch`; every parcel ack
(:meth:`note_ack_rtt`) records the round-trip into a per-link sketch.  A
periodic sweep flags a locality ``degraded`` when the median gap ratio
reaches ``degraded_factor`` — or when its *ongoing* silence does, which
catches a severe straggler before ``min_samples`` slow heartbeats have
even arrived.  Degraded is a third state between healthy and crashed: it
arms mitigation below but never feeds the crash quorum, so the recovery
manager's "stragglers are not dead" property is preserved by construction
(the tail layer only ever *reads* detector state).

**2. Speculative re-execution.**  Each sweep clones not-yet-completed
lineage-recorded tasks homed on a degraded locality onto a healthy
survivor, budgeted by ``max_speculation_frac`` of the work completed so
far.  First completion wins deterministically: whichever future resolves
first satisfies the application future and the loser's task is cancelled
through the executor (queued losers retire lazily, active losers have
their completion event cancelled), so the completed-task count stays one
per application future and reruns are bit-identical.  A clone that fails
while its original is still pending never wins — infrastructure errors
(e.g. admission shedding on the survivor) must not fail work the degraded
locality would eventually finish.

**3. Partition fencing.**  When the crash quorum declares a locality, the
tail layer bumps that locality's epoch.  Parcels are stamped with their
sender's epoch at send time; survivors reject stale-epoch arrivals (booked
as drops, so PF401 conservation holds) and a fenced locality that "comes
back" gets a typed :class:`repro.faults.errors.FencedEpochError` instead
of committing stale results.  When the gray detector disagrees with the
quorum — some monitor heard the victim recently, the asymmetric-partition
signature — the fence diagnosis names the partition.

Counters live under ``/tail{locality#N/total}``; the PF410
``SPECULATION_CONSERVED`` invariant audits the win/cancel ledger.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.runtime.future import Future
from repro.runtime.task import Task
from repro.tail.config import TailConfig
from repro.tail.sketch import QuantileSketch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.dist.runtime import DistRuntime
    from repro.runtime.sim_executor import SimExecutor


class TailManager:
    """Gray-failure detection + hedging support + speculation + fencing."""

    def __init__(self, dist: "DistRuntime", config: TailConfig) -> None:
        self.dist = dist
        self.config = config
        self.sim = dist.simulator
        n = dist.config.num_localities
        self._n = n
        # -- gray detector state ---------------------------------------------
        #: per-locality sketch of heartbeat gap / nominal period ratios
        self._gap_ratio = [QuantileSketch(config.sketch_capacity)
                           for _ in range(n)]
        #: per-link sketch of parcel ack round-trips (ns)
        self._link_rtt: dict[tuple[int, int], QuantileSketch] = {}
        self._degraded: set[int] = set()
        self._degraded_flag = [0] * n
        self.degraded_events = 0
        # -- hedging ledger (stores indexed by the *sending* locality) -------
        self._hedges_armed = [0] * n
        self._hedges_sent = [0] * n
        self._hedges_won = [0] * n
        self._hedges_lost = [0] * n
        self._hedges_cancelled = [0] * n
        # -- speculation state (stores indexed by the degraded home) ---------
        #: future id -> (task, executor) of whichever locality spawned it
        self._task_of: dict[int, tuple[Task, "SimExecutor"]] = {}
        #: original future id -> in-flight speculation pair
        self._spec: dict[int, dict] = {}
        #: future ids that *are* clones (never re-speculated)
        self._clone_fids: set[int] = set()
        #: clone future ids whose original already won but whose Task had
        #: not spawned yet (dataflow dep proxies still in flight) — they
        #: are cancelled the instant they spawn, before they can run
        self._doomed: set[int] = set()
        self._spec_by = [0] * n
        self._spec_wins_by = [0] * n
        self._spec_cancelled_by = [0] * n
        self._orig_cancelled_by = [0] * n
        self._spec_rr = 0
        # -- fencing state ---------------------------------------------------
        self._epoch = [0] * n
        self._fenced: set[int] = set()
        self._fenced_rejections = [0] * n
        self._fence_notes: list[str] = []
        self._register_counters()
        # Future -> Task bookkeeping for loser cancellation: every spawn on
        # every locality reports in (the hook exists only when tail is armed,
        # so a disabled config leaves the executors untouched).
        for loc in dist.localities:
            ex = loc.runtime.executor
            ex.on_spawn = (
                lambda task, ex=ex: self._note_spawn(task, ex)
            )

    # -- aggregate ledger (DistRuntime.run assembles the result from these) --

    @property
    def tasks_speculated(self) -> int:
        return sum(self._spec_by)

    @property
    def speculation_wins(self) -> int:
        return sum(self._spec_wins_by)

    @property
    def speculations_cancelled(self) -> int:
        return sum(self._spec_cancelled_by)

    @property
    def originals_cancelled(self) -> int:
        return sum(self._orig_cancelled_by)

    @property
    def hedges_armed(self) -> int:
        return sum(self._hedges_armed)

    @property
    def hedges_sent(self) -> int:
        return sum(self._hedges_sent)

    @property
    def hedges_won(self) -> int:
        return sum(self._hedges_won)

    @property
    def hedges_lost(self) -> int:
        return sum(self._hedges_lost)

    @property
    def hedges_cancelled(self) -> int:
        return sum(self._hedges_cancelled)

    @property
    def fenced_rejections(self) -> int:
        return sum(self._fenced_rejections)

    @property
    def localities_degraded(self) -> int:
        return len(self._degraded)

    @property
    def degraded_localities(self) -> tuple[int, ...]:
        return tuple(sorted(self._degraded))

    @property
    def speculation_budget(self) -> int:
        """The amplification cap at the current completed-task count."""
        return max(1, int(self.config.max_speculation_frac
                          * self._tasks_completed()))

    def _tasks_completed(self) -> int:
        return sum(loc.runtime.executor.tasks_completed
                   for loc in self.dist.localities)

    def _register_counters(self) -> None:
        """Export the ``/tail{locality#N/total}`` family.

        Registered only when the tail layer is enabled, so a disabled run's
        counter snapshot stays bit-identical to the pre-tail runtime.
        """
        reg = self.dist.registry

        def per_loc(store: list[int], i: int) -> Callable[[], float]:
            return lambda: float(store[i])

        for i in range(self._n):
            prefix = f"/tail{{locality#{i}/total}}"
            reg.value(f"{prefix}/count/degraded@gauge",
                      "1 while the gray detector flags this locality",
                      source=per_loc(self._degraded_flag, i))
            reg.value(f"{prefix}/count/epoch@gauge",
                      "fencing epoch of this locality (bumped on declare)",
                      source=per_loc(self._epoch, i))
            reg.derived(f"{prefix}/count/hedges-armed",
                        per_loc(self._hedges_armed, i),
                        "hedge timers this locality armed on unacked sends")
            reg.derived(f"{prefix}/count/hedges-sent",
                        per_loc(self._hedges_sent, i),
                        "hedge copies this locality put on the wire")
            reg.derived(f"{prefix}/count/hedges-won",
                        per_loc(self._hedges_won, i),
                        "hedge copies that delivered first")
            reg.derived(f"{prefix}/count/hedges-lost",
                        per_loc(self._hedges_lost, i),
                        "hedge copies beaten by the original (deduplicated)")
            reg.derived(f"{prefix}/count/hedges-cancelled",
                        per_loc(self._hedges_cancelled, i),
                        "hedge timers cancelled by an ack before firing")
            reg.derived(f"{prefix}/count/speculations",
                        per_loc(self._spec_by, i),
                        "tasks of this locality cloned onto a survivor")
            reg.derived(f"{prefix}/count/speculation-wins",
                        per_loc(self._spec_wins_by, i),
                        "clones that completed before their original")
            reg.derived(f"{prefix}/count/speculations-cancelled",
                        per_loc(self._spec_cancelled_by, i),
                        "clones called off (original won, or clone failed)")
            reg.derived(f"{prefix}/count/originals-cancelled",
                        per_loc(self._orig_cancelled_by, i),
                        "original tasks cancelled after their clone won")
            reg.derived(f"{prefix}/count/fenced-rejections",
                        per_loc(self._fenced_rejections, i),
                        "stale-epoch parcels from this locality rejected")

    # -- observation hooks (recovery manager + parcelport call these) --------

    def _note_spawn(self, task: Task, executor: "SimExecutor") -> None:
        hook = task.failure_hook
        owner = getattr(hook, "__self__", None)
        if isinstance(owner, Future):
            self._task_of[owner.future_id] = (task, executor)
            if owner.future_id in self._doomed:
                # The original won while this clone's dependency proxies
                # were still in flight; it has just been enqueued, so the
                # cancel is guaranteed to land before it runs.
                self._doomed.discard(owner.future_id)
                executor.cancel_task(task)

    def note_heartbeat_gap(
        self, monitor: int, peer: int, gap_ns: int, nominal_ns: int
    ) -> None:
        """One heartbeat from ``peer`` arrived ``gap_ns`` after the last."""
        if nominal_ns > 0:
            self._gap_ratio[peer].add(gap_ns / nominal_ns)

    def note_ack_rtt(self, src: int, dst: int, rtt_ns: int) -> None:
        """A parcel from ``src`` to ``dst`` was acked ``rtt_ns`` after send."""
        sketch = self._link_rtt.get((src, dst))
        if sketch is None:
            sketch = QuantileSketch(self.config.sketch_capacity)
            self._link_rtt[(src, dst)] = sketch
        sketch.add(float(rtt_ns))

    # -- hedging support (the parcelport owns the timers; we own the math) ---

    def hedge_delay_ns(self, src: int, dst: int) -> int | None:
        """How long to wait before hedging a send on this link.

        ``None`` while the link's ack-RTT sketch holds fewer than
        ``min_samples`` observations — no data, no hedge.  The delay is the
        configured quantile times ``hedge_multiplier``: transfer times are
        deterministic, so the quantile sits at the healthy RTT itself and
        the multiplier is what separates "normal" from "worth insuring".
        """
        if not self.config.hedge:
            return None
        sketch = self._link_rtt.get((src, dst))
        if sketch is None or len(sketch) < self.config.min_samples:
            return None
        quantile = sketch.quantile(self.config.hedge_quantile)
        return max(self.config.hedge_min_delay_ns,
                   int(self.config.hedge_multiplier * quantile))

    def note_hedge_armed(self, src: int) -> None:
        self._hedges_armed[src] += 1

    def note_hedge_sent(self, src: int) -> None:
        self._hedges_sent[src] += 1

    def note_hedge_won(self, src: int) -> None:
        self._hedges_won[src] += 1

    def note_hedge_lost(self, src: int) -> None:
        self._hedges_lost[src] += 1

    def note_hedge_cancelled(self, src: int) -> None:
        self._hedges_cancelled[src] += 1

    # -- fencing --------------------------------------------------------------

    def epoch_of(self, locality: int) -> int:
        return self._epoch[locality]

    def is_fenced(self, locality: int) -> bool:
        return locality in self._fenced

    def is_stale(self, source: int, epoch: int) -> bool:
        """Does a parcel stamped ``epoch`` from ``source`` predate its fence?"""
        return self.config.fencing and epoch < self._epoch[source]

    def note_fenced_rejection(self, source: int) -> None:
        self._fenced_rejections[source] += 1

    def note_declared(self, p: int) -> None:
        """The crash quorum declared ``p``: fence it and settle its flag."""
        if self._degraded_flag[p]:
            # Declared supersedes degraded — the locality is dead, not gray.
            self._degraded_flag[p] = 0
            self._degraded.discard(p)
        if not self.config.fencing:
            return
        self._epoch[p] += 1
        self._fenced.add(p)
        mgr = self.dist.recovery_manager
        now = self.sim.now
        horizon = self.config.degraded_factor * mgr.config.heartbeat_interval_ns
        dissenters = [
            m for m in range(self._n)
            if m != p
            and not self.dist.localities[m].crashed
            and m not in mgr._declared
            and now - mgr._last_seen[m][p] < horizon
        ]
        if dissenters:
            who = ", ".join(str(m) for m in dissenters)
            self._fence_notes.append(
                f"partition fenced: quorum declared locality {p} dead while "
                f"monitor(s) [{who}] still heard it recently — epoch "
                f"{self._epoch[p]} rejects its stale parcels"
            )
        else:
            self._fence_notes.append(
                f"locality {p} fenced at epoch {self._epoch[p]}: parcels it "
                "sent before the declaration are rejected on arrival"
            )

    # -- the detector sweep ---------------------------------------------------

    def start(self) -> None:
        """Arm the sweep chain (called from DistRuntime.run)."""
        self._schedule_sweep()

    def _schedule_sweep(self) -> None:
        self.sim.schedule(self.config.check_interval_ns, self._sweep)

    def _sweep(self) -> None:
        # Liveness rides the recovery manager's quiescence condition: the
        # chain re-arms only while application work, parcels, or an open
        # recovery still exist, so the event heap drains at run end.
        if not self.dist.recovery_manager._active():
            return
        self._update_flags()
        if self.config.speculate:
            self._speculate()
        self._schedule_sweep()

    def _update_flags(self) -> None:
        mgr = self.dist.recovery_manager
        now = self.sim.now
        nominal = mgr.config.heartbeat_interval_ns
        monitors = [
            loc.index
            for loc in self.dist.localities
            if not loc.crashed and loc.index not in mgr._declared
        ]
        for p in range(self._n):
            if p in mgr._declared:
                if self._degraded_flag[p]:
                    self._degraded_flag[p] = 0
                    self._degraded.discard(p)
                continue
            flagged = False
            sketch = self._gap_ratio[p]
            if (len(sketch) >= self.config.min_samples
                    and sketch.median() >= self.config.degraded_factor):
                flagged = True
            else:
                # Ongoing silence: a severe straggler's heartbeats are so
                # sparse the sketch would need min_samples * factor periods
                # to fill — the current gap alone is evidence enough.
                gaps = [now - mgr._last_seen[m][p] for m in monitors if m != p]
                if gaps and min(gaps) >= self.config.degraded_factor * nominal:
                    flagged = True
            if flagged and not self._degraded_flag[p]:
                self._degraded_flag[p] = 1
                self._degraded.add(p)
                self.degraded_events += 1
            elif not flagged and self._degraded_flag[p]:
                self._degraded_flag[p] = 0
                self._degraded.discard(p)

    # -- speculative re-execution ---------------------------------------------

    def _speculate(self) -> None:
        if not self._degraded:
            return
        mgr = self.dist.recovery_manager
        healthy = [
            loc.index
            for loc in self.dist.localities
            if not loc.crashed
            and loc.index not in mgr._declared
            and loc.index not in self._degraded
        ]
        if not healthy:
            return
        budget = self.speculation_budget
        owner = self.dist._owner
        # Snapshot: spawning a clone records new lineage mid-iteration.
        lineage = list(mgr._lineage.items())
        for p in sorted(self._degraded):
            for fid, lin in lineage:
                if self.tasks_speculated >= budget:
                    return
                if owner.get(fid) != p:
                    continue
                if lin.kind not in ("async", "dataflow"):
                    continue
                if lin.future.is_ready:
                    continue
                if fid in self._spec or fid in self._clone_fids:
                    continue
                if fid in mgr._replacement:
                    continue  # crash recovery already owns this future
                if lin.kind == "dataflow" and not all(
                    d.is_ready and not d.has_exception for d in lin.deps
                ):
                    continue
                target = healthy[self._spec_rr % len(healthy)]
                self._spec_rr += 1
                self._clone(p, fid, lin, target)

    def _clone(self, p: int, fid: int, lin, target: int) -> None:
        dist = self.dist
        name = f"spec:{lin.name or lin.future.name}"
        if lin.kind == "async":
            clone = dist.async_(
                lin.fn, *lin.args, locality=target, work=lin.work,
                name=name, priority=lin.priority, qos=lin.qos,
            )
        else:
            clone = dist.dataflow(
                lin.fn, list(lin.deps), locality=target, work=lin.work,
                name=name, priority=lin.priority, qos=lin.qos,
            )
        self._clone_fids.add(clone.future_id)
        self._spec[fid] = {"clone": clone, "resolved": False, "home": p}
        self._spec_by[p] += 1
        lin.future.on_ready(lambda _f, fid=fid: self._original_ready(fid))
        clone.on_ready(lambda _c, fid=fid: self._clone_ready(fid))

    def _original_ready(self, fid: int) -> None:
        """The original resolved first (its body, or a crash replacement)."""
        st = self._spec.get(fid)
        if st is None or st["resolved"]:
            return
        st["resolved"] = True
        p = st["home"]
        self._spec_cancelled_by[p] += 1
        clone: Future = st["clone"]
        entry = self._task_of.get(clone.future_id)
        if entry is not None:
            task, executor = entry
            executor.cancel_task(task)
        else:
            # A dataflow clone whose re-localized dep proxies are still in
            # flight has no Task yet — doom the future id so _note_spawn
            # cancels it the moment the when_all fires and it spawns.
            self._doomed.add(clone.future_id)

    def _clone_ready(self, fid: int) -> None:
        """The clone resolved first: it wins, the original is cancelled."""
        st = self._spec.get(fid)
        if st is None or st["resolved"]:
            return
        st["resolved"] = True
        p = st["home"]
        clone: Future = st["clone"]
        original = self.dist.recovery_manager._lineage[fid].future
        if clone.has_exception:
            # Infrastructure failure on the survivor (shed, crash): the
            # speculation is called off, never propagated — the degraded
            # locality will still finish the original.
            self._spec_cancelled_by[p] += 1
            return
        self._spec_wins_by[p] += 1
        # Cancel the original *before* satisfying its future: a queued
        # original dispatched later would otherwise double-set the value.
        entry = self._task_of.get(fid)
        if entry is None:
            # The original's own dep proxies are still in flight, so its
            # Task does not exist yet: doom the future id and _note_spawn
            # cancels it before it can run — it never executes.
            self._doomed.add(fid)
            cancelled = True
        else:
            task, executor = entry
            cancelled = executor.cancel_task(task)
        if cancelled:
            self._orig_cancelled_by[p] += 1
            if not original.is_ready:
                original.set_value(clone.value)
        # else: the original is mid-completion at this very timestamp and
        # will set its own (identical, deterministic) value — setting it
        # here would double-assign the future.

    # -- diagnosis (the watchdog and _diagnose read this) ---------------------

    def diagnose(self) -> list[str]:
        """Gray-detector / speculation / fence state, one string per finding."""
        parts: list[str] = []
        for p in sorted(self._degraded):
            sketch = self._gap_ratio[p]
            if len(sketch) >= self.config.min_samples:
                parts.append(
                    f"locality {p} degraded: median heartbeat gap "
                    f"{sketch.median():.1f}x nominal "
                    f"(threshold {self.config.degraded_factor:.1f}x)"
                )
            else:
                parts.append(
                    f"locality {p} degraded: silent beyond "
                    f"{self.config.degraded_factor:.1f}x the heartbeat period"
                )
        parts.extend(self._fence_notes)
        if self.tasks_speculated:
            parts.append(
                f"speculation: {self.tasks_speculated} clone(s), "
                f"{self.speculation_wins} won, "
                f"{self.speculations_cancelled} called off, "
                f"{self.originals_cancelled} original(s) cancelled"
            )
        if self.hedges_sent:
            parts.append(
                f"hedging: {self.hedges_sent} of {self.hedges_armed} armed "
                f"hedge(s) sent, {self.hedges_won} won, "
                f"{self.hedges_lost} deduplicated"
            )
        return parts
