"""Task-graph analysis: cycles, orphans, and parallelism bounds.

The paper's programming model builds a dependency graph out of futures
("the Future objects represent the terminal nodes and their combination
represents the edges", Sec. I-C).  This module answers three questions about
such a graph before (or after) it runs:

- **Can it run at all?**  A dependency cycle means the runtime can never
  order the tasks: :meth:`TaskGraph.find_cycles` (Tarjan SCC).
- **Does all of it matter?**  Nodes from which no requested output is
  reachable are orphan work: :meth:`TaskGraph.orphans`.
- **How parallel can it get?**  Width per level, depth, and the critical
  path bound achievable speedup regardless of grain size
  (:meth:`TaskGraph.stats`, :meth:`TaskGraph.critical_path`).

Graphs are built from live :class:`~repro.runtime.future.Future` objects
(via their recorded ``dependencies``) with :func:`graph_from_futures`, or
from a traced run's spawn records with :func:`graph_from_trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, TYPE_CHECKING

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.future import Future
    from repro.sim.trace import ExecutionTrace


@dataclass(frozen=True)
class GraphStats:
    """Shape statistics bounding achievable parallelism."""

    num_nodes: int
    num_edges: int
    #: number of dependency levels (longest chain, in nodes)
    depth: int
    #: widest level — an upper bound on exploitable concurrency
    max_width: int
    #: nodes / depth — average parallelism if levels ran lockstep
    avg_width: float
    #: total weight along the heaviest dependency chain
    critical_path_weight: float
    #: node ids of that chain, source to sink
    critical_path: tuple[int, ...]


class CycleError(ValueError):
    """Raised by DAG-only queries when the graph has a cycle."""


class TaskGraph:
    """A directed dependency graph over integer node ids.

    Edge ``(u, v)`` means *u must complete before v* (v depends on u).
    """

    def __init__(self) -> None:
        self._names: dict[int, str] = {}
        self._succ: dict[int, set[int]] = {}
        self._pred: dict[int, set[int]] = {}

    # -- construction ---------------------------------------------------------

    def add_node(self, node_id: int, name: str = "") -> None:
        if node_id not in self._names:
            self._names[node_id] = name or f"node#{node_id}"
            self._succ[node_id] = set()
            self._pred[node_id] = set()
        elif name:
            self._names[node_id] = name

    def add_edge(self, before: int, after: int) -> None:
        """Record that ``before`` must complete before ``after``."""
        self.add_node(before)
        self.add_node(after)
        self._succ[before].add(after)
        self._pred[after].add(before)

    # -- basics ---------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self._names)

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def name_of(self, node_id: int) -> str:
        return self._names.get(node_id, f"node#{node_id}")

    def nodes(self) -> list[int]:
        return sorted(self._names)

    def predecessors(self, node_id: int) -> set[int]:
        return set(self._pred.get(node_id, ()))

    def successors(self, node_id: int) -> set[int]:
        return set(self._succ.get(node_id, ()))

    # -- cycles (Tarjan strongly connected components) ------------------------

    def find_cycles(self) -> list[list[int]]:
        """Every strongly connected component with a cycle, as node lists.

        Iterative Tarjan (workload graphs can be deep chains; recursion
        would overflow).  Single nodes count only when self-looped.
        """
        index: dict[int, int] = {}
        low: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        counter = [0]
        cycles: list[list[int]] = []

        for root in self.nodes():
            if root in index:
                continue
            work: list[tuple[int, Iterable[int]]] = [(root, iter(self._succ[root]))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                v, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(self._succ[w])))
                        advanced = True
                        break
                    if w in on_stack:
                        low[v] = min(low[v], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[v])
                if low[v] == index[v]:
                    component: list[int] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        component.append(w)
                        if w == v:
                            break
                    if len(component) > 1 or v in self._succ[v]:
                        cycles.append(sorted(component))
        return cycles

    # -- orphans --------------------------------------------------------------

    def orphans(self, outputs: Iterable[int] | None = None) -> list[int]:
        """Nodes whose completion no requested output can observe.

        With ``outputs``: nodes from which no output is reachable along
        dependency edges.  Without: isolated nodes (no edges at all) — the
        weakest claim that is always safe.
        """
        if outputs is None:
            return [
                n
                for n in self.nodes()
                if not self._succ[n] and not self._pred[n] and self.num_nodes > 1
            ]
        useful: set[int] = set()
        frontier = [o for o in outputs if o in self._names]
        useful.update(frontier)
        while frontier:
            node = frontier.pop()
            for dep in self._pred[node]:
                if dep not in useful:
                    useful.add(dep)
                    frontier.append(dep)
        return [n for n in self.nodes() if n not in useful]

    # -- DAG shape ------------------------------------------------------------

    def _toposort(self) -> list[int]:
        in_deg = {n: len(self._pred[n]) for n in self._names}
        ready = sorted(n for n, d in in_deg.items() if d == 0)
        order: list[int] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for m in self._succ[n]:
                in_deg[m] -= 1
                if in_deg[m] == 0:
                    ready.append(m)
        if len(order) != self.num_nodes:
            raise CycleError("graph has a dependency cycle; run find_cycles()")
        return order

    def levels(self) -> dict[int, int]:
        """Node -> dependency level (longest chain of predecessors)."""
        level: dict[int, int] = {}
        for n in self._toposort():
            preds = self._pred[n]
            level[n] = 1 + max((level[p] for p in preds), default=-1)
        return level

    def critical_path(
        self, weights: dict[int, float] | None = None
    ) -> tuple[float, list[int]]:
        """Heaviest dependency chain; default node weight is 1.

        Returns ``(total_weight, [node ids source→sink])``.  With per-task
        durations as weights this is the run's lower time bound on any
        number of cores (the paper's starvation limit).
        """
        w = weights or {}
        best: dict[int, float] = {}
        prev: dict[int, int | None] = {}
        for n in self._toposort():
            node_w = float(w.get(n, 1.0))
            pred_best = None
            for p in self._pred[n]:
                if pred_best is None or best[p] > best[pred_best]:
                    pred_best = p
            best[n] = node_w + (best[pred_best] if pred_best is not None else 0.0)
            prev[n] = pred_best
        if not best:
            return 0.0, []
        end = max(best, key=lambda n: best[n])
        path: list[int] = []
        cursor: int | None = end
        while cursor is not None:
            path.append(cursor)
            cursor = prev[cursor]
        path.reverse()
        return best[end], path

    def stats(self, weights: dict[int, float] | None = None) -> GraphStats:
        """Shape statistics; raises :class:`CycleError` on cyclic graphs."""
        if self.num_nodes == 0:
            return GraphStats(0, 0, 0, 0, 0.0, 0.0, ())
        levels = self.levels()
        width: dict[int, int] = {}
        for lvl in levels.values():
            width[lvl] = width.get(lvl, 0) + 1
        depth = max(levels.values()) + 1
        cp_weight, cp_path = self.critical_path(weights)
        return GraphStats(
            num_nodes=self.num_nodes,
            num_edges=self.num_edges,
            depth=depth,
            max_width=max(width.values()),
            avg_width=self.num_nodes / depth,
            critical_path_weight=cp_weight,
            critical_path=tuple(cp_path),
        )

    # -- findings -------------------------------------------------------------

    def findings(self, outputs: Iterable[int] | None = None) -> list[Finding]:
        """GA201 per cycle, GA202 per orphan node."""
        out: list[Finding] = []
        for cycle in self.find_cycles():
            members = ", ".join(self.name_of(n) for n in cycle)
            out.append(
                Finding(
                    "GA201",
                    f"dependency cycle among {len(cycle)} node(s): {members} "
                    "— nothing in the cycle can ever become ready",
                )
            )
        for node in self.orphans(outputs):
            out.append(
                Finding(
                    "GA202",
                    f"{self.name_of(node)} contributes to no requested "
                    "output (orphan work)",
                )
            )
        return out


# -- builders ----------------------------------------------------------------------


def graph_from_futures(futures: Iterable["Future"]) -> TaskGraph:
    """Transitive dependency graph of live futures.

    Walks each future's recorded ``dependencies`` (populated by
    ``when_all``/``when_any``/``dataflow``/``then``).  Cycle-safe: injected
    or hand-built cyclic dependencies are represented, not followed forever.
    """
    graph = TaskGraph()
    seen: set[int] = set()
    frontier = list(futures)
    while frontier:
        f = frontier.pop()
        if f.future_id in seen:
            continue
        seen.add(f.future_id)
        graph.add_node(f.future_id, f.name)
        for dep in f.dependencies:
            graph.add_edge(dep.future_id, f.future_id)
            if dep.future_id not in seen:
                frontier.append(dep)
    return graph


def graph_from_trace(trace: "ExecutionTrace") -> TaskGraph:
    """Spawn-parentage graph of a traced simulated run.

    Nodes are tasks (by task id, named); edges follow
    :class:`~repro.sim.trace.SpawnRecord` parentage — the tree of who
    created whom, the trace-level analogue of the dependency graph.
    """
    graph = TaskGraph()
    for record in trace.spawns:
        graph.add_node(record.child_task_id, record.child_name)
        if record.parent_task_id is not None:
            graph.add_edge(record.parent_task_id, record.child_task_id)
    for phase in trace.phases:
        graph.add_node(phase.task_id, phase.task_name)
    return graph


def trace_task_weights(trace: "ExecutionTrace") -> dict[int, float]:
    """Per-task execution nanoseconds, for weighted critical paths."""
    weights: dict[int, float] = {}
    for phase in trace.phases:
        weights[phase.task_id] = weights.get(phase.task_id, 0.0) + (
            phase.duration_ns
        )
    return weights
