"""Dynamic checkers: the opt-in ``check=True`` runtime mode.

Static lint sees source; these checkers see the *actual* graph and the
actual interleaving:

- **Leaked futures (DC301)** — every future the runtime hands out is
  registered; any still pending when the run finishes means its task never
  ran or a dependency chain was dropped.
- **Runtime dependency cycles (DC302)** — the registered futures' recorded
  ``dependencies`` are checked for cycles before the run starts (and again
  when a deadlock is diagnosed), so the error names the futures in the loop
  instead of "N tasks outstanding".
- **Lockset data races (DC303)** — a lightweight Eraser-style monitor:
  state wrapped with :meth:`RuntimeChecker.monitor` records, per access,
  the accessing thread and the set of :class:`TrackedLock` objects it
  holds; a location whose candidate lockset intersects to empty across two
  or more threads (with at least one write) is reported as a race.

All three report :class:`~repro.analysis.findings.Finding` records and are
raised bundled in a :class:`CheckError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Iterable, TYPE_CHECKING

from repro.analysis.findings import Finding
from repro.analysis.graph import graph_from_futures

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.future import Future


class CheckError(RuntimeError):
    """One or more dynamic-check findings; ``.findings`` has the details."""

    def __init__(self, findings: list[Finding]):
        self.findings = findings
        lines = [f.format() for f in findings]
        super().__init__(
            f"{len(findings)} runtime check finding(s):\n  " + "\n  ".join(lines)
        )


class TrackedLock:
    """A reentrant lock whose ownership the checker can see.

    Use it exactly like ``threading.RLock``; the lockset monitor only
    understands locks acquired through this wrapper.
    """

    def __init__(self, checker: "RuntimeChecker", name: str) -> None:
        self._checker = checker
        self._lock = threading.RLock()
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._checker._held(self).add(self)
        return acquired

    def release(self) -> None:
        self._checker._held(self).discard(self)
        self._lock.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TrackedLock {self.name!r}>"


@dataclass
class _VarState:
    """Eraser candidate-lockset state for one monitored location."""

    lockset: set[TrackedLock] | None = None  # None = no access yet
    threads: set[int] = field(default_factory=set)
    writes: int = 0
    reads: int = 0

    def record(self, held: set[TrackedLock], is_write: bool) -> None:
        if self.lockset is None:
            self.lockset = set(held)
        else:
            self.lockset &= held
        self.threads.add(threading.get_ident())
        if is_write:
            self.writes += 1
        else:
            self.reads += 1

    @property
    def is_race(self) -> bool:
        return (
            len(self.threads) > 1 and self.writes > 0 and not self.lockset
        )


class Monitored:
    """Access-recording proxy around a shared object.

    Attribute and item reads/writes pass through to the wrapped object and
    are recorded against the checker, keyed ``name.attr`` / ``name[key]``.
    """

    __slots__ = ("_mon_target", "_mon_checker", "_mon_name")

    def __init__(self, target: Any, checker: "RuntimeChecker", name: str) -> None:
        object.__setattr__(self, "_mon_target", target)
        object.__setattr__(self, "_mon_checker", checker)
        object.__setattr__(self, "_mon_name", name)

    def __getattr__(self, attr: str) -> Any:
        checker: RuntimeChecker = object.__getattribute__(self, "_mon_checker")
        name: str = object.__getattribute__(self, "_mon_name")
        checker._record(f"{name}.{attr}", is_write=False)
        return getattr(object.__getattribute__(self, "_mon_target"), attr)

    def __setattr__(self, attr: str, value: Any) -> None:
        checker: RuntimeChecker = object.__getattribute__(self, "_mon_checker")
        name: str = object.__getattribute__(self, "_mon_name")
        checker._record(f"{name}.{attr}", is_write=True)
        setattr(object.__getattribute__(self, "_mon_target"), attr, value)

    def __getitem__(self, key: Any) -> Any:
        checker: RuntimeChecker = object.__getattribute__(self, "_mon_checker")
        name: str = object.__getattribute__(self, "_mon_name")
        checker._record(f"{name}[{key!r}]", is_write=False)
        return object.__getattribute__(self, "_mon_target")[key]

    def __setitem__(self, key: Any, value: Any) -> None:
        checker: RuntimeChecker = object.__getattribute__(self, "_mon_checker")
        name: str = object.__getattribute__(self, "_mon_name")
        checker._record(f"{name}[{key!r}]", is_write=True)
        object.__getattribute__(self, "_mon_target")[key] = value

    def __len__(self) -> int:
        return len(object.__getattribute__(self, "_mon_target"))


class RuntimeChecker:
    """Collects dynamic findings for one runtime instance."""

    def __init__(self, runtime_name: str = "runtime") -> None:
        self.runtime_name = runtime_name
        self._futures: list["Future"] = []
        self._vars: dict[str, _VarState] = {}
        self._tls = threading.local()
        self._mutex = threading.Lock()

    # -- future registration ---------------------------------------------------

    def register_future(self, future: "Future") -> None:
        with self._mutex:
            self._futures.append(future)

    @property
    def registered_futures(self) -> list["Future"]:
        return list(self._futures)

    # -- lockset machinery -----------------------------------------------------

    def tracked_lock(self, name: str = "lock") -> TrackedLock:
        return TrackedLock(self, name)

    def monitor(self, target: Any, name: str) -> Monitored:
        """Wrap shared state so accesses through the proxy are checked."""
        return Monitored(target, self, name)

    def _held(self, _lock: TrackedLock) -> set[TrackedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = set()
            self._tls.held = held
        return held

    def _record(self, key: str, is_write: bool) -> None:
        held = set(getattr(self._tls, "held", ()) or ())
        with self._mutex:
            self._vars.setdefault(key, _VarState()).record(held, is_write)

    # -- findings --------------------------------------------------------------

    def leak_findings(self) -> list[Finding]:
        """DC301 for every registered future still pending."""
        return [
            Finding(
                "DC301",
                f"future {f.name!r} (#{f.future_id}) was still pending at "
                f"{self.runtime_name} completion — its task never ran "
                "(dropped dependency edge or unreachable input)",
            )
            for f in self._futures
            if not f.is_ready
        ]

    def cycle_findings(self) -> list[Finding]:
        """DC302 for every dependency cycle among registered futures."""
        graph = graph_from_futures(self._futures)
        out: list[Finding] = []
        for cycle in graph.find_cycles():
            members = ", ".join(graph.name_of(n) for n in cycle)
            out.append(
                Finding(
                    "DC302",
                    f"dependency cycle among futures: {members} — the "
                    "cycle can never become ready (deadlock)",
                )
            )
        return out

    def race_findings(self) -> list[Finding]:
        """DC303 for every monitored location with an empty lockset race."""
        with self._mutex:
            states = dict(self._vars)
        out: list[Finding] = []
        for key, state in sorted(states.items()):
            if state.is_race:
                out.append(
                    Finding(
                        "DC303",
                        f"{key} was accessed by {len(state.threads)} threads "
                        f"({state.writes} writes, {state.reads} reads) with "
                        "no common lock held — lockset race",
                    )
                )
        return out

    def all_findings(self) -> list[Finding]:
        return self.cycle_findings() + self.leak_findings() + self.race_findings()

    def raise_if_findings(self, findings: Iterable[Finding] | None = None) -> None:
        collected = list(findings) if findings is not None else self.all_findings()
        if collected:
            raise CheckError(collected)
