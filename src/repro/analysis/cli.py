"""Command-line driver: ``python -m repro.analysis``.

Examples::

    python -m repro.analysis examples/                      # lint a directory
    python -m repro.analysis workload.py --format json      # machine-readable
    python -m repro.analysis --list-rules                   # rule catalogue
    python -m repro.analysis src --select TG101,TG105       # only these rules

Exit status: 0 = clean, 1 = findings reported, 2 = usage error.  CI runs
this over ``examples/`` and ``src/repro/apps`` (``make lint``) with zero
findings required.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import Counter

from repro.analysis.findings import RULES, Severity
from repro.analysis.lint import expand_paths, lint_paths


def _split_ids(value: str) -> list[str]:
    return [v.strip() for v in value.split(",") if v.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Task-graph lint for repro workload scripts.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select", type=_split_ids, default=None, metavar="IDS",
        help="comma-separated rule IDs (or prefixes, e.g. 'TG') to report "
        "exclusively",
    )
    parser.add_argument(
        "--ignore", type=_split_ids, default=None, metavar="IDS",
        help="comma-separated rule IDs (or prefixes) to drop",
    )
    parser.add_argument(
        "--min-severity", choices=("info", "warning", "error"),
        default="info", help="report findings at or above this severity",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule ID with its severity and summary, then exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.rule_id}  {rule.severity!s:7}  {rule.name}: {rule.summary}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    # Entries are prefix-matched ('TG' selects every TG1xx rule), but a
    # typo'd entry matching nothing must not silently report "clean".
    unknown = [
        rid
        for rid in (args.select or []) + (args.ignore or [])
        if not any(known.startswith(rid.upper()) for known in RULES)
    ]
    if unknown:
        print(f"error: unknown rule ID: {', '.join(unknown)}", file=sys.stderr)
        return 2

    files = expand_paths(args.paths)
    missing = [str(p) for p in files if not p.is_file()]
    if missing:
        print(f"error: no such file: {', '.join(missing)}", file=sys.stderr)
        return 2

    threshold = Severity[args.min_severity.upper()]
    findings = [
        f
        for f in lint_paths(files, select=args.select, ignore=args.ignore)
        if f.severity >= threshold
    ]

    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": len(files),
                    "findings": [f.to_dict() for f in findings],
                },
                indent=2,
            )
        )
    else:
        for f in findings:
            print(f.format())
        by_sev = Counter(str(f.severity) for f in findings)
        detail = ", ".join(f"{n} {sev}" for sev, n in sorted(by_sev.items()))
        summary = (
            f"{len(findings)} finding(s) ({detail}) in {len(files)} file(s)"
            if findings
            else f"clean: 0 findings in {len(files)} file(s)"
        )
        print(summary)
    return 1 if findings else 0
