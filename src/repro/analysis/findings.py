"""Findings: the common currency of every analysis layer.

Static lint rules (``TG1xx``), graph analyses (``GA2xx``), the dynamic
checkers (``DC3xx``), and the parity-fuzzing invariants (``PF4xx``,
:mod:`repro.verify.invariants`) all report :class:`Finding` records so the
CLI, tests, and CI treat them uniformly.  A finding pins a rule ID, a
severity, a human-readable message, and — when it came from source — a
``file:line:col`` anchor.

Rule IDs are stable API: docs/analysis.md documents each one, inline
suppressions name them (``# noqa: TG101``), and the golden-findings tests
assert on them.  Add new rules by extending :data:`RULES`; never renumber.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Ordered so findings can be filtered with a threshold."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name.lower()


@dataclass(frozen=True)
class Rule:
    """Static description of one analysis rule."""

    rule_id: str
    name: str
    severity: Severity
    summary: str


#: Every rule any layer can emit.  See docs/analysis.md for rationale.
RULES: dict[str, Rule] = {
    r.rule_id: r
    for r in [
        # -- static lint (AST) ------------------------------------------------
        Rule(
            "TG100", "syntax-error", Severity.ERROR,
            "file could not be parsed; nothing else was checked",
        ),
        Rule(
            "TG101", "blocking-get-in-task", Severity.ERROR,
            "task body blocks on a future (.value/.get()/wait()); suspension "
            "must go through a generator yield or a dataflow dependency",
        ),
        Rule(
            "TG102", "lost-future", Severity.WARNING,
            "future is created but never composed or consumed — a dropped "
            "dependency-graph edge",
        ),
        Rule(
            "TG103", "unsynchronized-capture", Severity.WARNING,
            "task closure mutates enclosing mutable state without holding a "
            "lock (data race under the thread executor)",
        ),
        Rule(
            "TG104", "per-element-spawn", Severity.WARNING,
            "independent task spawned per element of a nested loop — the "
            "fine-grained overhead wall; chunk the work instead",
        ),
        Rule(
            "TG105", "unfulfilled-future", Severity.ERROR,
            "manually constructed Future() is never given a value or "
            "exception — anything waiting on it deadlocks",
        ),
        Rule(
            "TG106", "nondeterministic-source", Severity.WARNING,
            "task body reads a nondeterministic source (global random, "
            "wall/monotonic clock, datetime.now()) — breaks bit-identical "
            "replay; use the seeded SplitMix64 streams or inject an RNG",
        ),
        Rule(
            "TG107", "adhoc-lock-in-task", Severity.WARNING,
            "task body takes a shared Lock/RLock the scheduler cannot see "
            "— unbounded priority inversion; declare the resource with a "
            "critical section (repro.rt) so a protocol bounds the blocking",
        ),
        Rule(
            "TG108", "swallowed-fault", Severity.WARNING,
            "task body catches bare Exception (or everything) without "
            "re-raising — the typed fault hierarchy (ParcelLostError, "
            "TaskShedError, FencedEpochError, ...) is swallowed and the "
            "failure never reaches the consumer or the recovery layer",
        ),
        # -- graph analysis ---------------------------------------------------
        Rule(
            "GA201", "dependency-cycle", Severity.ERROR,
            "dependency graph contains a cycle; the runtime cannot order it "
            "and the program deadlocks",
        ),
        Rule(
            "GA202", "orphan-future", Severity.WARNING,
            "node contributes to no requested output (unreachable work)",
        ),
        # -- dynamic checkers -------------------------------------------------
        Rule(
            "DC301", "leaked-future", Severity.ERROR,
            "future was still pending when the runtime finished — its task "
            "never ran or its dependencies never completed",
        ),
        Rule(
            "DC302", "runtime-dependency-cycle", Severity.ERROR,
            "futures registered at runtime form a dependency cycle",
        ),
        Rule(
            "DC303", "data-race", Severity.ERROR,
            "monitored state was accessed by multiple threads with no common "
            "lock held (lockset analysis)",
        ),
        # -- parity-fuzzing invariants (repro.verify) -------------------------
        Rule(
            "PF401", "parcel-conservation", Severity.ERROR,
            "wire copies not conserved: sent + retransmitted != received + "
            "dropped + duplicates-discarded",
        ),
        Rule(
            "PF402", "task-conservation", Severity.ERROR,
            "task count not conserved: a spec'd task never completed, or "
            "the runtime executed tasks the spec does not describe",
        ),
        Rule(
            "PF403", "dependency-order-conservation", Severity.ERROR,
            "structural fingerprint differs from the spec's model — a task "
            "observed parent values the dependency graph does not produce",
        ),
        Rule(
            "PF404", "counter-identity", Severity.ERROR,
            "a counter identity is violated (offered != completed + shed, "
            "or readmitted != spilled)",
        ),
        Rule(
            "PF405", "unclean-run", Severity.ERROR,
            "a check=True run of a well-formed workload raised dynamic-"
            "checker findings",
        ),
        Rule(
            "PF406", "nondeterministic-rerun", Severity.ERROR,
            "the same seed did not replay bit-identically (execution time "
            "or counters differ between reruns)",
        ),
        Rule(
            "PF407", "backend-divergence", Severity.ERROR,
            "sim/thread/dist backends disagree on the structural result of "
            "the same workload spec",
        ),
        Rule(
            "PF408", "recovery-conservation", Severity.ERROR,
            "crash recovery did not conserve the lost work: re-executions "
            "!= losses, restores exceed durable checkpoints, or time-to-"
            "recover does not decompose into detection + restore + "
            "re-execution",
        ),
        Rule(
            "PF409", "rt-conservation", Severity.ERROR,
            "the deadline ledger does not balance: released != on-time + "
            "missed for some RT task, blocked time recorded without any "
            "contended acquire, or the miss set differs between reruns",
        ),
        Rule(
            "PF410", "speculation-conservation", Severity.ERROR,
            "the first-wins ledger does not balance: speculations != wins + "
            "called-off, originals cancelled without a winning clone, hedge "
            "copies unaccounted, or work amplification exceeds the "
            "speculation budget",
        ),
    ]
}


@dataclass(frozen=True)
class Finding:
    """One reported problem, anchored to source or to a runtime object."""

    rule_id: str
    message: str
    file: str = "<runtime>"
    line: int = 0
    col: int = 0
    #: severity resolved from RULES at construction unless overridden
    severity: Severity = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.severity is None:
            object.__setattr__(
                self, "severity", RULES[self.rule_id].severity
            )

    def format(self) -> str:
        """``file:line:col: RULE severity: message`` (line 0 = no anchor)."""
        anchor = f"{self.file}:{self.line}:{self.col}" if self.line else self.file
        return f"{anchor}: {self.rule_id} {self.severity}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "name": RULES[self.rule_id].name if self.rule_id in RULES else "",
            "severity": str(self.severity),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "col": self.col,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: by file, line, column, then rule ID."""
    return sorted(
        findings, key=lambda f: (f.file, f.line, f.col, f.rule_id)
    )
