"""Lexical scope model for the workload linter.

The lint rules need three things classic ``ast.walk`` does not give them:

- which names a function *binds* vs which it *captures* from an enclosing
  scope (rule TG103's closure-capture analysis);
- which assigned names are *futures* — bound from ``async_``/``dataflow``/
  ``when_all``/``Future()``/... expressions (rules TG101/TG102/TG105);
- where task bodies are: the callables handed to spawn calls, so rules can
  analyze "code that runs inside a task" differently from driver code.

The model is heuristic by design.  Workload scripts are small and direct
(the seven ``examples/`` and four ``repro.apps`` are the calibration set);
the rules prefer missing an exotic construction to flagging idiomatic code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

#: calls that return a Future (API of repro.runtime / ThreadRuntime / Runtime)
FUTURE_PRODUCERS = frozenset(
    {"async_", "dataflow", "then", "when_all", "when_any", "make_ready_future"}
)
#: calls that *consume* futures as dependencies rather than fulfilling them
FUTURE_CONSUMERS = frozenset(
    {"when_all", "when_any", "dataflow", "then", "wait", "graph_from_futures"}
)
#: method calls that mutate their receiver in place (rule TG103)
MUTATING_METHODS = frozenset(
    {
        "append", "extend", "insert", "add", "update", "remove", "discard",
        "pop", "popitem", "clear", "setdefault", "sort", "reverse",
        "appendleft", "popleft", "__setitem__",
    }
)


def call_name(call: ast.Call) -> str | None:
    """The bare name of a call: ``rt.async_(...)`` and ``async_(...)`` are
    both ``"async_"``; anything else (subscripts, nested calls) is None."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def is_future_expr(expr: ast.expr) -> bool:
    """Does this expression evaluate to a Future (or a collection of them)?"""
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        return name in FUTURE_PRODUCERS or name == "Future"
    if isinstance(expr, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        return is_future_expr(expr.elt)
    if isinstance(expr, (ast.List, ast.Tuple)):
        return bool(expr.elts) and all(is_future_expr(e) for e in expr.elts)
    return False


@dataclass
class Scope:
    """One lexical scope: the module, a def, or a lambda."""

    node: ast.AST
    parent: "Scope | None" = None
    children: list["Scope"] = field(default_factory=list)
    #: names bound here (params, assignment targets, defs, imports, for/with)
    bound: set[str] = field(default_factory=set)
    #: names loaded lexically in *this* scope (not nested defs)
    loads: set[str] = field(default_factory=set)
    #: name -> node of the first assignment whose RHS produces future(s)
    future_assigns: dict[str, ast.AST] = field(default_factory=dict)
    #: name -> ``Future(...)`` constructor call it was bound from
    manual_futures: dict[str, ast.Call] = field(default_factory=dict)
    #: function definitions by name (for resolving task bodies)
    functions: dict[str, "Scope"] = field(default_factory=dict)
    #: names declared ``nonlocal``/``global`` here (writes target outer scope)
    outer_decls: set[str] = field(default_factory=set)
    #: true if this scope contains a yield (generator task body)
    is_generator: bool = False

    def all_loads(self) -> set[str]:
        """Loads in this scope and every nested scope (closures count)."""
        names = set(self.loads)
        for child in self.children:
            names |= child.all_loads()
        return names

    def future_names(self) -> set[str]:
        """Future-bound names visible here (own plus enclosing scopes)."""
        names: set[str] = set()
        scope: Scope | None = self
        while scope is not None:
            names |= scope.future_assigns.keys()
            names |= scope.manual_futures.keys()
            scope = scope.parent
        return names

    def binds(self, name: str) -> bool:
        return name in self.bound

    def binding_scope(self, name: str) -> "Scope | None":
        """The nearest scope (self included) that binds ``name``."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bound:
                return scope
            scope = scope.parent
        return None

    def resolve_function(self, name: str) -> "Scope | None":
        """Find the scope of a def named ``name``, walking outward."""
        scope: Scope | None = self
        while scope is not None:
            if name in scope.functions:
                return scope.functions[name]
            scope = scope.parent
        return None

    def walk(self) -> Iterator["Scope"]:
        yield self
        for child in self.children:
            yield from child.walk()


def _bind_target(scope: Scope, target: ast.expr) -> None:
    """Record names bound by an assignment/for/with target."""
    if isinstance(target, ast.Name):
        scope.bound.add(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _bind_target(scope, elt)
    elif isinstance(target, ast.Starred):
        _bind_target(scope, target.value)
    # Subscript/Attribute targets mutate existing objects; they bind nothing.


def _bind_args(scope: Scope, args: ast.arguments) -> None:
    for a in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        scope.bound.add(a.arg)
    if args.vararg:
        scope.bound.add(args.vararg.arg)
    if args.kwarg:
        scope.bound.add(args.kwarg.arg)


def _record_assign(scope: Scope, name: str, value: ast.expr, node: ast.AST) -> None:
    if is_future_expr(value):
        scope.future_assigns.setdefault(name, node)
        if (
            isinstance(value, ast.Call)
            and call_name(value) == "Future"
        ):
            scope.manual_futures.setdefault(name, value)


def build_scopes(tree: ast.Module) -> Scope:
    """Build the scope tree of a parsed module."""
    root = Scope(node=tree)
    _populate(tree.body, root)
    return root


def _populate(stmts: list[ast.stmt], scope: Scope) -> None:
    for stmt in stmts:
        _visit(stmt, scope)


def _new_function_scope(
    node: ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda, scope: Scope
) -> Scope:
    child = Scope(node=node, parent=scope)
    scope.children.append(child)
    _bind_args(child, node.args)
    # Default values evaluate in the *enclosing* scope.
    for default in list(node.args.defaults) + [
        d for d in node.args.kw_defaults if d is not None
    ]:
        _visit(default, scope)
    if isinstance(node, ast.Lambda):
        _visit(node.body, child)
    else:
        scope.bound.add(node.name)
        scope.functions[node.name] = child
        for deco in node.decorator_list:
            _visit(deco, scope)
        _populate(node.body, child)
    return child


def _visit(node: ast.AST, scope: Scope) -> None:
    """Walk one node, creating nested scopes at function boundaries."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        _new_function_scope(node, scope)
        return
    if isinstance(node, ast.ClassDef):
        # Class bodies are rare in workload scripts; treat the body as part
        # of the enclosing scope for load-tracking purposes.
        scope.bound.add(node.name)
        _populate(node.body, scope)
        return
    if isinstance(node, (ast.Global, ast.Nonlocal)):
        scope.outer_decls.update(node.names)
        scope.bound.update(node.names)
        return
    if isinstance(node, ast.Assign):
        _visit(node.value, scope)
        for target in node.targets:
            _bind_target(scope, target)
            if isinstance(target, ast.Name):
                _record_assign(scope, target.id, node.value, node)
            _visit_target_loads(target, scope)
        return
    if isinstance(node, ast.AnnAssign):
        if node.value is not None:
            _visit(node.value, scope)
            if isinstance(node.target, ast.Name):
                _record_assign(scope, node.target.id, node.value, node)
        _bind_target(scope, node.target)
        _visit_target_loads(node.target, scope)
        return
    if isinstance(node, ast.AugAssign):
        _visit(node.value, scope)
        _visit_target_loads(node.target, scope)
        if isinstance(node.target, ast.Name):
            scope.loads.add(node.target.id)
        return
    if isinstance(node, (ast.For, ast.AsyncFor)):
        _visit(node.iter, scope)
        _bind_target(scope, node.target)
        _populate(node.body, scope)
        _populate(node.orelse, scope)
        return
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            _visit(item.context_expr, scope)
            if item.optional_vars is not None:
                _bind_target(scope, item.optional_vars)
        _populate(node.body, scope)
        return
    if isinstance(node, (ast.Import, ast.ImportFrom)):
        for alias in node.names:
            scope.bound.add((alias.asname or alias.name).split(".")[0])
        return
    if isinstance(node, (ast.Yield, ast.YieldFrom)):
        scope.is_generator = True
        for child in ast.iter_child_nodes(node):
            _visit(child, scope)
        return
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        # Comprehension scopes are folded into the enclosing scope: their
        # targets bind and their body loads count as enclosing loads, which
        # is what the rules need (a future consumed in a comprehension IS
        # consumed).
        for gen in node.generators:
            _visit(gen.iter, scope)
            _bind_target(scope, gen.target)
            for cond in gen.ifs:
                _visit(cond, scope)
        if isinstance(node, ast.DictComp):
            _visit(node.key, scope)
            _visit(node.value, scope)
        else:
            _visit(node.elt, scope)
        return
    if isinstance(node, ast.Name):
        if isinstance(node.ctx, ast.Load):
            scope.loads.add(node.id)
        return
    for child in ast.iter_child_nodes(node):
        _visit(child, scope)


def _visit_target_loads(target: ast.expr, scope: Scope) -> None:
    """Subscript/attribute stores *load* their base (``x[i] = v`` reads x)."""
    if isinstance(target, ast.Subscript):
        _visit(target.value, scope)
        _visit(target.slice, scope)
    elif isinstance(target, ast.Attribute):
        _visit(target.value, scope)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            _visit_target_loads(elt, scope)


# -- spawn-site discovery ----------------------------------------------------------


@dataclass(frozen=True)
class SpawnSite:
    """One call that creates a task: ``async_``/``dataflow``/``then``."""

    call: ast.Call
    kind: str
    #: the task-body expression (Lambda, Name, or arbitrary expr), if found
    body: ast.expr | None
    #: the dependency-list expression (dataflow/then only)
    deps: ast.expr | None
    #: enclosing loop depth at the call site (comprehension fors count)
    loop_depth: int


def find_spawn_sites(tree: ast.Module) -> list[SpawnSite]:
    """All spawn calls in the module, annotated with loop depth.

    Loop depth resets at function boundaries: a helper that spawns once is
    judged at its own call sites' granularity, not the helper's.
    """
    sites: list[SpawnSite] = []

    def walk(node: ast.AST, depth: int) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in node.body:
                walk(stmt, 0)
            return
        if isinstance(node, ast.Lambda):
            walk(node.body, depth)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            for child in ast.iter_child_nodes(node):
                walk(child, depth + 1)
            return
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            inner = depth + len(node.generators)
            for child in ast.iter_child_nodes(node):
                walk(child, inner)
            return
        if isinstance(node, ast.Call):
            site = _classify_spawn(node, depth)
            if site is not None:
                sites.append(site)
        for child in ast.iter_child_nodes(node):
            walk(child, depth)

    for stmt in tree.body:
        walk(stmt, 0)
    return sites


def _classify_spawn(call: ast.Call, depth: int) -> SpawnSite | None:
    name = call_name(call)
    if name == "async_":
        body = call.args[0] if call.args else None
        return SpawnSite(call, "async_", body, None, depth)
    if name == "dataflow":
        if isinstance(call.func, ast.Attribute):
            body = call.args[0] if len(call.args) > 0 else None
            deps = call.args[1] if len(call.args) > 1 else None
        else:  # module-level dataflow(spawner, fn, deps)
            body = call.args[1] if len(call.args) > 1 else None
            deps = call.args[2] if len(call.args) > 2 else None
        return SpawnSite(call, "dataflow", body, deps, depth)
    if name == "then" and not isinstance(call.func, ast.Attribute):
        body = call.args[2] if len(call.args) > 2 else None
        deps = call.args[1] if len(call.args) > 1 else None
        return SpawnSite(call, "then", body, deps, depth)
    return None
