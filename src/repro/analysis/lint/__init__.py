"""Static lint over workload scripts: ``lint_source`` / ``lint_file`` /
``lint_paths``.

The linter parses each file once, builds the scope model
(:mod:`repro.analysis.lint.scopes`), runs every rule in
:data:`repro.analysis.lint.rules.ALL_RULES`, then drops findings the source
suppresses inline:

- ``# noqa`` on the flagged line suppresses every rule there;
- ``# noqa: TG102`` (comma-separated IDs) suppresses only those rules.

Unparseable files yield a single TG100 finding instead of crashing the run —
a syntax error in one workload must not hide findings in the others.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, sort_findings
from repro.analysis.lint.rules import ALL_RULES, LintContext

_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<rules>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?", re.IGNORECASE
)


def _suppressions(source: str) -> dict[int, set[str] | None]:
    """line number -> suppressed rule IDs (None = all rules)."""
    out: dict[int, set[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = {r.strip().upper() for r in rules.split(",")}
    return out


def lint_source(source: str, filename: str = "<string>") -> list[Finding]:
    """Lint one module's source text; returns sorted, unsuppressed findings."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Finding(
                "TG100",
                f"syntax error: {exc.msg}",
                filename,
                exc.lineno or 0,
                (exc.offset or 1) - 1,
            )
        ]
    ctx = LintContext(tree, filename)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        findings.extend(rule(ctx))
    suppressed = _suppressions(source)
    kept = [
        f
        for f in findings
        if not (
            f.line in suppressed
            and (suppressed[f.line] is None or f.rule_id in suppressed[f.line])
        )
    ]
    return sort_findings(kept)


def lint_file(path: str | Path) -> list[Finding]:
    path = Path(path)
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def expand_paths(paths: Iterable[str | Path]) -> list[Path]:
    """Files as-is; directories become their ``*.py`` files, recursively."""
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)
    return files


def lint_paths(
    paths: Iterable[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Finding]:
    """Lint files and directories; optional rule-ID allow/deny lists.

    Entries are prefix-matched, so ``select=["TG"]`` keeps every ``TG1xx``
    finding and ``ignore=["PF40"]`` drops the whole ``PF40x`` family.
    """
    findings: list[Finding] = []
    for path in expand_paths(paths):
        findings.extend(lint_file(path))
    if select:
        chosen = tuple(r.upper() for r in select)
        findings = [f for f in findings if f.rule_id.startswith(chosen)]
    if ignore:
        dropped = tuple(r.upper() for r in ignore)
        findings = [f for f in findings if not f.rule_id.startswith(dropped)]
    return findings


__all__ = [
    "lint_source",
    "lint_file",
    "lint_paths",
    "expand_paths",
]
