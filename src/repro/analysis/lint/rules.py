"""The lint rules (TG101–TG108) over a parsed workload module.

Each rule is a function ``(ctx) -> list[Finding]`` over a shared
:class:`LintContext`; the driver in ``lint/__init__`` runs them all and
applies inline suppressions.  Rationale for every rule — and which of the
paper's granularity walls it guards — lives in docs/analysis.md.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.lint.scopes import (
    FUTURE_CONSUMERS,
    MUTATING_METHODS,
    Scope,
    SpawnSite,
    build_scopes,
    call_name,
    find_spawn_sites,
    is_future_expr,
)


@dataclass
class LintContext:
    """Everything the rules need about one module."""

    tree: ast.Module
    filename: str
    root: Scope = field(init=False)
    sites: list[SpawnSite] = field(init=False)
    _scope_by_node: dict[int, Scope] = field(init=False)

    def __post_init__(self) -> None:
        self.root = build_scopes(self.tree)
        self.sites = find_spawn_sites(self.tree)
        self._scope_by_node = {id(s.node): s for s in self.root.walk()}

    def scope_of(self, node: ast.AST) -> Scope | None:
        return self._scope_by_node.get(id(node))

    def body_scope(self, site: SpawnSite) -> Scope | None:
        """Resolve a spawn site's task body to its scope, if analyzable."""
        body = site.body
        if body is None:
            return None
        if isinstance(body, ast.Lambda):
            return self.scope_of(body)
        if isinstance(body, ast.Name):
            for scope in self.root.walk():
                if body.id in scope.functions:
                    return scope.functions[body.id]
        return None


def _body_nodes(scope: Scope) -> Iterator[tuple[ast.AST, int]]:
    """Nodes lexically inside a task body, with enclosing ``with`` depth.

    Nested function definitions are pruned: they are separate (sub)task
    bodies or helpers, analyzed at their own spawn sites.
    """

    def walk(node: ast.AST, with_depth: int) -> Iterator[tuple[ast.AST, int]]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                yield item.context_expr, with_depth
                yield from walk(item.context_expr, with_depth)
            for stmt in node.body:
                yield stmt, with_depth + 1
                yield from walk(stmt, with_depth + 1)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield child, with_depth
            yield from walk(child, with_depth)

    node = scope.node
    if isinstance(node, ast.Lambda):
        yield node.body, 0
        yield from walk(node.body, 0)
    else:
        for stmt in getattr(node, "body", []):
            yield stmt, 0
            yield from walk(stmt, 0)


def _loc(node: ast.AST) -> tuple[int, int]:
    return getattr(node, "lineno", 0), getattr(node, "col_offset", 0)


def _base_name(expr: ast.expr) -> str | None:
    """The root Name of an attribute/subscript chain (``a.b[c].d`` -> a)."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


# -- TG101: blocking get inside a task body ----------------------------------------


def check_blocking_get(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for site in ctx.sites:
        scope = ctx.body_scope(site)
        if scope is None:
            continue
        future_names = scope.future_names()
        for node, _wd in _body_nodes(scope):
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name in {"wait", "wait_idle", "run"} and isinstance(
                    node.func, ast.Attribute
                ):
                    line, col = _loc(node)
                    findings.append(
                        Finding(
                            "TG101",
                            f"task body calls .{name}() — it blocks a worker "
                            "and can deadlock the pool; depend on the future "
                            "via dataflow or yield it from a generator task",
                            ctx.filename, line, col,
                        )
                    )
                elif (
                    name == "get"
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in future_names
                ):
                    line, col = _loc(node)
                    findings.append(
                        Finding(
                            "TG101",
                            f"task body blocks on future "
                            f"{node.func.value.id!r}.get(); make it a "
                            "dependency instead",
                            ctx.filename, line, col,
                        )
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "value"
                and isinstance(node.ctx, ast.Load)
                and not scope.is_generator
            ):
                base = node.value
                is_future = (
                    isinstance(base, ast.Name) and base.id in future_names
                ) or (isinstance(base, ast.Call) and is_future_expr(base))
                if is_future:
                    what = (
                        f"future {base.id!r}"
                        if isinstance(base, ast.Name)
                        else "a freshly spawned future"
                    )
                    line, col = _loc(node)
                    findings.append(
                        Finding(
                            "TG101",
                            f"task body reads .value of {what} — unready "
                            "futures raise (sim) or race (threads); pass it "
                            "as a dataflow dependency or yield it",
                            ctx.filename, line, col,
                        )
                    )
    return findings


# -- TG102: future created but never composed --------------------------------------


def check_lost_future(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    # (a) spawn expression statements whose future is discarded outright
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.Expr)
            and isinstance(node.value, ast.Call)
            and is_future_expr(node.value)
        ):
            line, col = _loc(node)
            findings.append(
                Finding(
                    "TG102",
                    f"result of {call_name(node.value)}() is discarded — the "
                    "dependency edge is lost and completion is unobservable",
                    ctx.filename, line, col,
                )
            )
    # (b) future-bound names that are never read anywhere in scope
    for scope in ctx.root.walk():
        loads = scope.all_loads()
        for name, node in scope.future_assigns.items():
            if name.startswith("_") or name in loads:
                continue
            line, col = _loc(node)
            findings.append(
                Finding(
                    "TG102",
                    f"future {name!r} is assigned but never composed or "
                    "consumed (lost dependency edge)",
                    ctx.filename, line, col,
                )
            )
    return findings


# -- TG103: unsynchronized mutation of captured state ------------------------------


def check_unsynchronized_capture(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple[int, int, str]] = set()

    def captured(scope: Scope, name: str | None) -> bool:
        if name is None or scope.binds(name):
            return False
        return scope.parent is not None and (
            scope.parent.binding_scope(name) is not None
        )

    def flag(node: ast.AST, name: str, how: str) -> None:
        line, col = _loc(node)
        key = (line, col, name)
        if key in seen:
            return
        seen.add(key)
        findings.append(
            Finding(
                "TG103",
                f"task closure {how} captured {name!r} without holding a "
                "lock — a data race when tasks run on OS threads; guard it "
                "with a lock or return a value and reduce via dataflow",
                ctx.filename, line, col,
            )
        )

    for site in ctx.sites:
        scope = ctx.body_scope(site)
        if scope is None:
            continue
        for node, with_depth in _body_nodes(scope):
            if with_depth > 0:
                continue  # inside a with-block: assume it is the lock
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        name = _base_name(target)
                        if captured(scope, name):
                            flag(node, name, "writes into")
                    elif isinstance(target, ast.Name) and (
                        target.id in scope.outer_decls
                    ):
                        flag(node, target.id, "rebinds")
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATING_METHODS:
                    name = _base_name(node.func.value)
                    if captured(scope, name):
                        flag(node, name, f"mutates ({node.func.attr})")
    return findings


# -- TG104: per-element spawning in tight (nested) loops ---------------------------


def check_per_element_spawn(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for site in ctx.sites:
        if site.loop_depth < 2:
            continue
        if site.kind == "async_":
            independent = True
        elif site.kind == "dataflow":
            # dataflow with real dependencies *is* the graph — only flag the
            # degenerate no-dependency form.
            independent = isinstance(site.deps, (ast.List, ast.Tuple)) and not (
                site.deps.elts
            )
        else:
            independent = False
        if not independent:
            continue
        line, col = _loc(site.call)
        findings.append(
            Finding(
                "TG104",
                f"independent task spawned per element {site.loop_depth} "
                "loops deep — fine-grained tasks hit the overhead wall "
                "(paper Sec. IV); chunk with parallel_for_each/AutoChunkSize "
                "or batch the inner loop into one task",
                ctx.filename, line, col,
            )
        )
    return findings


# -- TG105: manually built Future never satisfied ----------------------------------


def check_unfulfilled_future(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for scope in ctx.root.walk():
        if not scope.manual_futures:
            continue
        satisfied: set[str] = set()
        escaped: set[str] = set()
        names = set(scope.manual_futures)

        def names_in(node: ast.AST) -> set[str]:
            return {
                n.id
                for n in ast.walk(node)
                if isinstance(n, ast.Name) and n.id in names
            }

        for node in ast.walk(scope.node):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in {"set_value", "set_exception"}
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in names
                ):
                    satisfied.add(node.func.value.id)
                elif call_name(node) not in FUTURE_CONSUMERS:
                    for arg in list(node.args) + [k.value for k in node.keywords]:
                        escaped |= names_in(arg)
            elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    escaped |= names_in(node.value)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        escaped |= names_in(node.value)
        for name, ctor in scope.manual_futures.items():
            if name in satisfied or name in escaped:
                continue
            line, col = _loc(ctor)
            findings.append(
                Finding(
                    "TG105",
                    f"Future {name!r} is constructed but no code path calls "
                    "set_value/set_exception — anything depending on it "
                    "waits forever",
                    ctx.filename, line, col,
                )
            )
    return findings


# -- TG106: nondeterministic source inside a task body -----------------------------

#: ``time.X()`` calls that read a clock (the ``_ns`` and perf_counter
#: variants are the same hazard as the two the rule is named for)
_NONDET_TIME_ATTRS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns",
     "perf_counter", "perf_counter_ns"}
)


def _bound_in_function(scope: Scope, name: str) -> bool:
    """Is ``name`` bound by an enclosing *function* scope (not the module)?

    That is the injected-dependency shape — ``def body(rng): ...`` or a
    helper that takes its RNG as a parameter — which rule TG106 exempts:
    injection is exactly how seeded determinism is done.
    """
    s: Scope | None = scope
    while s is not None:
        if not isinstance(s.node, ast.Module) and s.binds(name):
            return True
        s = s.parent
    return False


def check_nondeterministic_source(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple[int, int]] = set()
    for site in ctx.sites:
        scope = ctx.body_scope(site)
        if scope is None:
            continue
        for node, _wd in _body_nodes(scope):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            base = _base_name(node.func.value)
            if base is None or _bound_in_function(scope, base):
                continue  # injected RNG/clock: the sanctioned pattern
            attr = node.func.attr
            if base == "random":
                what = f"the global random.{attr}()"
            elif base == "time" and attr in _NONDET_TIME_ATTRS:
                what = f"the clock via time.{attr}()"
            elif (
                base == "datetime"
                and attr == "now"
                and not node.args
                and not node.keywords
            ):
                what = "the wall clock via datetime.now()"
            else:
                continue
            line, col = _loc(node)
            if (line, col) in seen:
                continue
            seen.add((line, col))
            findings.append(
                Finding(
                    "TG106",
                    f"task body reads {what} — nondeterminism breaks "
                    "bit-identical replay (invariant PF406); draw through "
                    "the seeded SplitMix64 streams (repro.faults.plan) or "
                    "inject a seeded RNG instead",
                    ctx.filename, line, col,
                )
            )
    return findings


# -- TG107: ad-hoc lock acquisition inside a task body -----------------------------

#: constructors that build an OS-thread mutex, bare or ``threading.``-qualified
_LOCK_CTORS = frozenset({"Lock", "RLock"})


def _shared_lock_names(ctx: LintContext) -> set[str]:
    """Names bound to a ``Lock()``/``RLock()`` constructor anywhere in the
    module (``threading.Lock()`` and ``from threading import Lock`` alike)."""
    names: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        else:
            continue
        if isinstance(value, ast.Call) and call_name(value) in _LOCK_CTORS:
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def check_adhoc_lock_in_task(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    locks = _shared_lock_names(ctx)
    if not locks:
        return findings
    seen: set[tuple[int, int]] = set()

    def flag(node: ast.AST, name: str, how: str) -> None:
        line, col = _loc(node)
        if (line, col) in seen:
            return
        seen.add((line, col))
        findings.append(
            Finding(
                "TG107",
                f"task body {how} shared lock {name!r} directly — the "
                "scheduler cannot see an ad-hoc mutex, so a low-priority "
                "holder can be starved while a high-priority waiter blocks "
                "(unbounded priority inversion); declare the resource on "
                "the task spec (repro.rt: resource + critical_section_ns) "
                "so the inherit/ceiling protocol bounds the blocking",
                ctx.filename, line, col,
            )
        )

    for site in ctx.sites:
        scope = ctx.body_scope(site)
        if scope is None:
            continue
        for node, _wd in _body_nodes(scope):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    name = _base_name(item.context_expr)
                    if name in locks and not _bound_in_function(scope, name):
                        flag(item.context_expr, name, "enters (with)")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                name = _base_name(node.func.value)
                if (
                    name in locks
                    and not _bound_in_function(scope, name)
                ):
                    flag(node, name, "acquires")
    return findings


# -- TG108: task body swallows the typed fault hierarchy ---------------------------

#: catch targets broad enough to swallow every typed runtime fault
_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _catches_broadly(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch everything (bare) or ``Exception``-wide?"""
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for expr in types:
        while isinstance(expr, ast.Attribute):
            expr = expr.value  # builtins.Exception and the like
        if isinstance(expr, ast.Name) and expr.id in _BROAD_EXCEPTIONS:
            return True
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does any path through the handler re-raise?

    A ``raise`` nested in a function defined inside the handler does not
    count — defining a closure is not raising.
    """

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield child
            yield from walk(child)

    for stmt in handler.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.Raise) or any(
            isinstance(n, ast.Raise) for n in walk(stmt)
        ):
            return True
    return False


def check_swallowed_fault(ctx: LintContext) -> list[Finding]:
    """Task bodies must not blanket-catch: the runtime's typed failures
    (ParcelLostError, TaskShedError, FencedEpochError, ...) propagate
    through the task's future to its consumer and to the recovery layer —
    a broad ``except`` that does not re-raise eats them, so the consumer
    sees a normal value and recovery never learns the task failed.
    Driver code (anything outside a spawned body) is exempt: catching at
    the top level is exactly where broad handlers belong."""
    findings: list[Finding] = []
    seen: set[tuple[int, int]] = set()
    for site in ctx.sites:
        scope = ctx.body_scope(site)
        if scope is None:
            continue
        for node, _wd in _body_nodes(scope):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _catches_broadly(node) or _reraises(node):
                continue
            line, col = _loc(node)
            if (line, col) in seen:
                continue
            seen.add((line, col))
            what = (
                "everything (bare except)"
                if node.type is None
                else f"{ast.unparse(node.type)}"
            )
            findings.append(
                Finding(
                    "TG108",
                    f"task body catches {what} without re-raising — the "
                    "typed fault hierarchy (ParcelLostError, TaskShedError, "
                    "FencedEpochError, ...) is swallowed here, so the "
                    "consumer sees a normal result and recovery never "
                    "learns the task failed; catch the specific exception "
                    "you can handle, or re-raise",
                    ctx.filename, line, col,
                )
            )
    return findings


ALL_RULES = [
    check_blocking_get,
    check_lost_future,
    check_unsynchronized_capture,
    check_per_element_spawn,
    check_unfulfilled_future,
    check_nondeterministic_source,
    check_adhoc_lock_in_task,
    check_swallowed_fault,
]
