"""repro.analysis — correctness tooling for task-graph workloads.

Three layers over one :class:`~repro.analysis.findings.Finding` currency:

1. **Static lint** (:mod:`repro.analysis.lint`) — AST rules TG101–TG108
   over workload scripts: blocking gets inside task bodies, lost dependency
   edges, unsynchronized closure captures, per-element spawning, and
   never-fulfilled futures.  CLI: ``python -m repro.analysis <paths>``.
2. **Graph analysis** (:mod:`repro.analysis.graph`) — cycles (GA201),
   orphans (GA202), and width/depth/critical-path statistics over live
   future graphs or execution traces.
3. **Dynamic checkers** (:mod:`repro.analysis.dynamic`) — the runtimes'
   opt-in ``check=True`` mode: leaked futures (DC301), runtime dependency
   cycles (DC302), and lockset data races (DC303).

See docs/analysis.md for every rule's rationale and suppression syntax.
"""

from repro.analysis.dynamic import (
    CheckError,
    Monitored,
    RuntimeChecker,
    TrackedLock,
)
from repro.analysis.findings import Finding, RULES, Rule, Severity, sort_findings
from repro.analysis.graph import (
    CycleError,
    GraphStats,
    TaskGraph,
    graph_from_futures,
    graph_from_trace,
    trace_task_weights,
)
from repro.analysis.lint import lint_file, lint_paths, lint_source

__all__ = [
    "CheckError",
    "CycleError",
    "Finding",
    "GraphStats",
    "Monitored",
    "RULES",
    "Rule",
    "RuntimeChecker",
    "Severity",
    "TaskGraph",
    "TrackedLock",
    "graph_from_futures",
    "graph_from_trace",
    "lint_file",
    "lint_paths",
    "lint_source",
    "sort_findings",
    "trace_task_weights",
]
