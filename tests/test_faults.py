"""Unit tests for repro.faults: plans, injector determinism, retry params."""

import pytest

from repro.faults import (
    CrashAt,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
    LocalityCrashError,
    ParcelLostError,
    RetryParams,
    Straggler,
    WatchdogTimeout,
    stream_unit,
)


class TestStreams:
    def test_unit_in_range_and_deterministic(self):
        draws = [stream_unit(42, 1, i) for i in range(1000)]
        assert all(0.0 <= d < 1.0 for d in draws)
        assert draws == [stream_unit(42, 1, i) for i in range(1000)]

    def test_distinct_keys_give_distinct_draws(self):
        assert stream_unit(0, 1, 2) != stream_unit(0, 2, 1)
        assert stream_unit(0, 1, 2) != stream_unit(1, 1, 2)

    def test_roughly_uniform(self):
        draws = [stream_unit(7, 3, i) for i in range(4000)]
        mean = sum(draws) / len(draws)
        assert 0.45 < mean < 0.55


class TestPlanValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=1.5)

    def test_one_straggler_per_locality(self):
        with pytest.raises(ValueError):
            FaultPlan(
                stragglers=(Straggler(0, 2.0), Straggler(0, 3.0))
            )

    def test_straggler_factor_at_least_one(self):
        with pytest.raises(ValueError):
            Straggler(0, 0.5)

    def test_degradation_window_sane(self):
        with pytest.raises(ValueError):
            LinkDegradation(start_ns=10, end_ns=10)
        with pytest.raises(ValueError):
            LinkDegradation(start_ns=0, end_ns=10, latency_factor=0.5)
        with pytest.raises(ValueError):
            LinkDegradation(start_ns=0, end_ns=10, bandwidth_factor=0.0)

    def test_none_plan_is_inactive(self):
        assert not FaultPlan.none().is_active
        assert FaultPlan(drop_rate=0.01).is_active
        assert FaultPlan(crashes=(CrashAt(0, 5),)).is_active
        assert FaultPlan(doom_every=4).is_active


class TestInjector:
    def test_drop_decisions_are_pure(self):
        inj = FaultInjector(FaultPlan(seed=9, drop_rate=0.3))
        fates = [(inj.drops(p, a)) for p in range(200) for a in range(3)]
        inj2 = FaultInjector(FaultPlan(seed=9, drop_rate=0.3))
        assert fates == [
            (inj2.drops(p, a)) for p in range(200) for a in range(3)
        ]

    def test_drop_rate_is_respected_statistically(self):
        inj = FaultInjector(FaultPlan(seed=1, drop_rate=0.2))
        hits = sum(inj.drops(p, 0) for p in range(1, 5001))
        assert 0.17 < hits / 5000 < 0.23

    def test_seed_changes_the_schedule(self):
        a = FaultInjector(FaultPlan(seed=1, drop_rate=0.5))
        b = FaultInjector(FaultPlan(seed=2, drop_rate=0.5))
        fates_a = [a.drops(p, 0) for p in range(100)]
        fates_b = [b.drops(p, 0) for p in range(100)]
        assert fates_a != fates_b

    def test_doomed_parcels_always_drop(self):
        inj = FaultInjector(FaultPlan(seed=3, doom_every=7))
        assert inj.doomed(7) and inj.doomed(14)
        assert not inj.doomed(8)
        assert all(inj.drops(14, attempt) for attempt in range(10))

    def test_zero_rates_never_fire(self):
        inj = FaultInjector(FaultPlan(seed=5))
        assert not any(inj.drops(p, 0) for p in range(100))
        assert not any(inj.duplicates(p, 0) for p in range(100))

    def test_link_multipliers_compound(self):
        inj = FaultInjector(
            FaultPlan(
                degradations=(
                    LinkDegradation(0, 100, latency_factor=2.0),
                    LinkDegradation(
                        50, 100, latency_factor=3.0, bandwidth_factor=0.5
                    ),
                )
            )
        )
        assert inj.link_multipliers(0, 1, 10) == (2.0, 1.0)
        assert inj.link_multipliers(0, 1, 60) == (6.0, 0.5)
        assert inj.link_multipliers(0, 1, 100) == (1.0, 1.0)

    def test_link_degradation_matches_specific_link_only(self):
        window = LinkDegradation(0, 100, latency_factor=2.0, src=0, dst=1)
        inj = FaultInjector(FaultPlan(degradations=(window,)))
        assert inj.link_multipliers(0, 1, 50) == (2.0, 1.0)
        assert inj.link_multipliers(1, 0, 50) == (1.0, 1.0)

    def test_straggler_and_crash_lookup(self):
        inj = FaultInjector(
            FaultPlan(
                stragglers=(Straggler(1, 4.0),),
                crashes=(CrashAt(2, 1000),),
            )
        )
        assert inj.straggler_factor(1) == 4.0
        assert inj.straggler_factor(0) == 1.0
        assert inj.crash_time(2) == 1000
        assert inj.crash_time(0) is None

    def test_jitter_bounded(self):
        inj = FaultInjector(FaultPlan(seed=11))
        draws = [inj.jitter_ns(p, 0, 500) for p in range(500)]
        assert all(0 <= j <= 500 for j in draws)
        assert len(set(draws)) > 100  # actually varies
        assert inj.jitter_ns(3, 0, 0) == 0


class TestRetryParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryParams(ack_timeout_ns=0)
        with pytest.raises(ValueError):
            RetryParams(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryParams(max_retries=-1)
        with pytest.raises(ValueError):
            RetryParams(max_jitter_ns=-1)

    def test_exponential_backoff(self):
        retry = RetryParams(ack_timeout_ns=100, backoff_factor=2.0)
        assert [retry.timeout_ns(a) for a in range(4)] == [100, 200, 400, 800]


class TestErrors:
    def test_parcel_lost_names_everything(self):
        err = ParcelLostError(12, 0, 3, 4)
        text = str(err)
        assert "parcel #12" in text
        assert "locality 0 -> locality 3" in text
        assert "4 attempts" in text
        assert err.parcel_id == 12 and err.attempts == 4

    def test_single_attempt_grammar(self):
        assert "1 attempt" in str(ParcelLostError(1, 0, 1, 1))

    def test_crash_and_watchdog_carry_fields(self):
        crash = LocalityCrashError(2, detail="halo producer died")
        assert crash.locality == 2 and "halo producer" in str(crash)
        dog = WatchdogTimeout(5_000, "locality 1: 3 task(s) outstanding")
        assert dog.deadline_ns == 5_000
        assert "locality 1" in str(dog)
