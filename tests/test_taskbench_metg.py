"""The METG sweep and bisection."""

import pytest

from repro.taskbench.metg import (
    EfficiencyPoint,
    MetgResult,
    default_grain_sweep,
    efficiency_curve,
    measure_efficiency,
    metg,
)
from repro.taskbench.patterns import TaskBenchSpec

SPEC = TaskBenchSpec(pattern="stencil_1d", width=16, steps=6)
KW = dict(platform="haswell", num_cores=4, scheduler="priority-local", seed=0)


class TestGrainSweep:
    def test_strictly_increasing_with_endpoints(self):
        sweep = default_grain_sweep(200, 100_000, per_decade=3)
        assert sweep[0] == 200
        assert sweep[-1] == 100_000
        assert all(a < b for a, b in zip(sweep, sweep[1:]))
        # ~2.7 decades at 3/decade plus the forced endpoint
        assert 8 <= len(sweep) <= 10

    def test_degenerate_single_point(self):
        assert default_grain_sweep(500, 500) == [500]

    def test_validation(self):
        with pytest.raises(ValueError, match="finest"):
            default_grain_sweep(0, 100)
        with pytest.raises(ValueError, match="finest"):
            default_grain_sweep(200, 100)
        with pytest.raises(ValueError, match="per_decade"):
            default_grain_sweep(200, 2_000, per_decade=0)


class TestEfficiencyCurve:
    def test_efficiency_rises_with_grain(self):
        curve = efficiency_curve(SPEC, [400, 4_000, 40_000], **KW)
        assert [p.grain for p in curve] == [400, 4_000, 40_000]
        for p in curve:
            assert 0.0 <= p.efficiency <= 1.0
            assert p.efficiency == pytest.approx(1.0 - p.idle_rate)
            assert p.tasks_executed == SPEC.total_tasks
        assert curve[-1].efficiency > curve[0].efficiency

    def test_distributed_path(self):
        point = measure_efficiency(
            TaskBenchSpec(pattern="stencil_1d", width=8, steps=4),
            20_000,
            platform="haswell",
            num_cores=2,
            scheduler="priority-local",
            seed=0,
            num_localities=2,
        )
        assert 0.0 <= point.efficiency <= 1.0
        assert point.tasks_executed == 32


class TestMetg:
    def test_bracketed_crossing(self):
        result = metg(SPEC, target=0.5, **KW)
        assert isinstance(result, MetgResult)
        assert result.achieved
        assert result.grain is not None
        # the reported grain really does meet the target...
        assert result.efficiency_at(result.grain) >= 0.5
        # ...and the interpolated crossing sits at or below it, inside the
        # measured curve's range
        assert result.curve[0].grain <= result.interpolated_grain
        assert result.interpolated_grain <= result.grain
        # bisection refined beyond the coarse sweep
        assert len(result.curve) > len(default_grain_sweep())

    def test_target_never_reached(self):
        result = metg(SPEC, target=0.9, grains=[200, 400], **KW)
        assert not result.achieved
        assert result.grain is None
        assert result.interpolated_grain is None
        assert "not reached" in result.summary()

    def test_finest_grain_already_passes(self):
        result = metg(SPEC, target=0.5, grains=[50_000, 100_000], **KW)
        assert result.grain == 50_000
        assert result.interpolated_grain == 50_000.0
        assert len(result.curve) == 2  # nothing to bisect

    def test_deterministic(self):
        a = metg(SPEC, **KW)
        b = metg(SPEC, **KW)
        assert a == b

    def test_more_cores_coarser_metg(self):
        narrow = metg(SPEC, **{**KW, "num_cores": 1})
        wide = metg(SPEC, **{**KW, "num_cores": 8})
        assert wide.interpolated_grain >= narrow.interpolated_grain

    def test_validation(self):
        with pytest.raises(ValueError, match="target"):
            metg(SPEC, target=1.5, **KW)
        with pytest.raises(ValueError, match="rel_tol"):
            metg(SPEC, rel_tol=0.0, **KW)

    def test_efficiency_at_unknown_grain(self):
        result = metg(SPEC, grains=[50_000, 100_000], **KW)
        with pytest.raises(KeyError):
            result.efficiency_at(123)

    def test_summary_mentions_the_configuration(self):
        text = metg(SPEC, **KW).summary()
        assert "stencil_1d" in text
        assert "4 cores" in text
        assert "haswell" in text


class TestEfficiencyPoint:
    def test_frozen_value_object(self):
        p = EfficiencyPoint(1_000, 0.5, 0.5, 123, 96)
        with pytest.raises(AttributeError):
            p.grain = 2_000
