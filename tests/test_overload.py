"""Overload-control unit and integration tests (PR: repro.overload).

Covers the four layers one by one — admission control on the scheduler
queues, credit-based flow control and circuit breakers on the parcelport,
and the governor's epoch-level control loop — plus the satellite pieces:
per-worker queue-depth gauges, the bounded dead-letter ring, and the
watchdog diagnosis that names both a dead dependency cone and the
unacked parcels under a combined crash + drop fault plan.  The figure
driver (``repro.experiments.figO_overload``) exercises the layers at
sweep scale; these tests pin the individual semantics.
"""

import pytest

from repro.counters.registry import CounterRegistry
from repro.dist import (
    CrashAt,
    DistConfig,
    DistRuntime,
    FaultPlan,
    RetryParams,
    WatchdogTimeout,
)
from repro.dist.network import NetworkModel
from repro.dist.parcel import Parcelport
from repro.faults.plan import FaultInjector
from repro.overload.admission import (
    AdmissionControl,
    AdmissionParams,
)
from repro.overload.breaker import BreakerParams, BreakerState, CircuitBreaker
from repro.overload.config import CreditParams, OverloadConfig
from repro.overload.errors import CircuitOpenError, TaskShedError
from repro.overload.governor import (
    GovernorParams,
    GovernorSignals,
    OverloadGovernor,
)
from repro.overload.workload import OfferedLoad, run_offered_load
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Priority, Task
from repro.runtime.work import FixedWork
from repro.schedulers.queues import DualQueue
from repro.sim.engine import Simulator


# ---------------------------------------------------------------------------
# configuration validation
# ---------------------------------------------------------------------------


class TestConfigValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown overflow policy"):
            AdmissionParams(max_depth=8, policy="drop")

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            AdmissionParams(max_depth=0, policy="shed")

    def test_zero_credit_window_rejected(self):
        with pytest.raises(ValueError, match="credit window"):
            CreditParams(window=0)

    def test_breaker_threshold_rejected(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerParams(failure_threshold=0)

    def test_empty_config_is_inactive(self):
        assert not OverloadConfig().is_active
        assert OverloadConfig(credits=CreditParams()).is_active
        assert OverloadConfig(admission=AdmissionParams()).is_active

    def test_credits_require_retry_on_parcelport(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="require RetryParams"):
            Parcelport(
                0, sim, NetworkModel(), CounterRegistry(),
                credits=CreditParams(window=4),
            )

    def test_breaker_requires_retry_on_dist_config(self):
        with pytest.raises(ValueError, match="reliable transport"):
            DistConfig(
                num_localities=2,
                cores_per_locality=1,
                overload=OverloadConfig(breaker=BreakerParams()),
            )

    def test_dead_letter_capacity_validated(self):
        with pytest.raises(ValueError, match="dead_letter_capacity"):
            DistConfig(
                num_localities=2, cores_per_locality=1, dead_letter_capacity=0
            )


# ---------------------------------------------------------------------------
# offered-load arithmetic
# ---------------------------------------------------------------------------


class TestOfferedLoad:
    def test_count_covers_half_open_window(self):
        # Arrivals at k * 1000 strictly inside [0, 10000): k = 0..9.
        load = OfferedLoad(grain_ns=500, interarrival_ns=1000, window_ns=10_000)
        assert load.count == 10

    def test_count_excludes_the_window_edge(self):
        load = OfferedLoad(grain_ns=500, interarrival_ns=2500, window_ns=10_000)
        assert load.count == 4  # 0, 2500, 5000, 7500 — not 10000

    def test_at_utilization_math(self):
        load = OfferedLoad.at_utilization(
            2.0, grain_ns=4_000, num_cores=8, window_ns=100_000
        )
        # 2x the pure-execution capacity of 8 cores: one arrival per
        # grain/(cores * u) = 250 ns.
        assert load.interarrival_ns == pytest.approx(250.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OfferedLoad(grain_ns=0, interarrival_ns=1, window_ns=1)
        with pytest.raises(ValueError):
            OfferedLoad.at_utilization(
                0.0, grain_ns=1000, num_cores=4, window_ns=1000
            )


# ---------------------------------------------------------------------------
# admission control: overflow-policy semantics end to end
# ---------------------------------------------------------------------------

BOUND = 32

#: 4x overload on a 4-core machine: arrivals every grain/(4*4) ns
OVERLOAD = OfferedLoad.at_utilization(
    4.0, grain_ns=2_000, num_cores=4, window_ns=100_000
)


def _overloaded(policy: str):
    config = RuntimeConfig(
        platform="haswell",
        num_cores=4,
        overload=OverloadConfig(
            admission=AdmissionParams(max_depth=BOUND, policy=policy)
        ),
    )
    return run_offered_load(config, OVERLOAD)


class TestAdmissionPolicies:
    def test_shed_conserves_and_bounds(self):
        outcome = _overloaded("shed")
        assert outcome.shed > 0
        assert outcome.offered == outcome.completed + outcome.shed
        result = outcome.result
        assert result.peak_queue_depth <= BOUND
        assert result.tasks_shed == outcome.shed
        assert result.tasks_offered == outcome.offered

    def test_shed_error_names_the_victim_and_the_bound(self):
        config = RuntimeConfig(
            platform="haswell",
            num_cores=4,
            overload=OverloadConfig(
                admission=AdmissionParams(max_depth=BOUND, policy="shed")
            ),
        )
        rt = Runtime(config)
        futures = [
            rt.async_(lambda: 1, work=FixedWork(2_000), name=f"offered#{k}")
            for k in range(8 * BOUND)
        ]
        rt.run()
        errors = [
            f.exception
            for f in futures
            if isinstance(f.exception, TaskShedError)
        ]
        assert errors, "spawning 8x the bound at t=0 must shed"
        for err in errors:
            assert err.max_depth == BOUND
            assert err.queue_depth >= BOUND
            assert err.task_name.startswith("offered#")

    def test_block_completes_everything_with_backpressure(self):
        outcome = _overloaded("block")
        assert outcome.shed == 0
        assert outcome.completed == outcome.offered
        result = outcome.result
        assert result.peak_queue_depth <= BOUND
        assert result.tasks_blocked > 0
        assert result.tasks_readmitted == result.tasks_blocked
        assert result.backpressure_wait_ns > 0

    def test_spill_conserves_all_offered_work(self):
        outcome = _overloaded("spill")
        assert outcome.shed == 0
        assert outcome.completed == outcome.offered
        result = outcome.result
        assert result.peak_queue_depth <= BOUND
        assert result.tasks_spilled > 0
        assert result.tasks_readmitted == result.tasks_spilled
        # The cold queue drained: nothing is left in a deferred lane.
        assert result.counters.get("/overload/count/spill-depth@gauge") == 0

    def test_unbounded_observer_only_measures(self):
        config = RuntimeConfig(
            platform="haswell",
            num_cores=4,
            overload=OverloadConfig(admission=AdmissionParams()),
        )
        outcome = run_offered_load(config, OVERLOAD)
        assert outcome.shed == 0
        assert outcome.completed == outcome.offered
        result = outcome.result
        # Depth statistics are tracked, and the 4x backlog shows.
        assert result.peak_queue_depth > BOUND
        assert result.tasks_offered == outcome.offered


class TestShedVictimSelection:
    """The shed policy evicts the lowest-priority staged task, newest
    among ties, and sheds the newcomer on a priority tie."""

    def _control(self, shed_log):
        control = AdmissionControl(
            AdmissionParams(max_depth=2, policy="shed"),
            now_fn=lambda: 0,
            on_shed=lambda task, err: shed_log.append((task, err)),
        )
        queue = DualQueue()
        control.attach(queue)
        return control, queue

    def test_high_priority_evicts_newest_low(self):
        shed_log = []
        control, queue = self._control(shed_log)
        low1 = Task(None, name="low1", priority=Priority.LOW)
        low2 = Task(None, name="low2", priority=Priority.LOW)
        queue.push_staged(low1)
        queue.push_staged(low2)
        high = Task(None, name="high", priority=Priority.HIGH)
        queue.push_staged(high)
        assert [t.name for t, _ in shed_log] == ["low2"]
        assert [t.name for t in queue._staged] == ["low1", "high"]

    def test_priority_tie_sheds_the_newcomer(self):
        shed_log = []
        control, queue = self._control(shed_log)
        queue.push_staged(Task(None, name="a", priority=Priority.NORMAL))
        queue.push_staged(Task(None, name="b", priority=Priority.NORMAL))
        late = Task(None, name="late", priority=Priority.NORMAL)
        queue.push_staged(late)
        assert [t.name for t, _ in shed_log] == ["late"]
        assert [t.name for t in queue._staged] == ["a", "b"]
        assert control.stats.offered == 3
        assert control.stats.admitted == 2
        assert control.stats.shed == 1

    def test_shed_error_carries_depth_and_bound(self):
        shed_log = []
        _, queue = self._control(shed_log)
        queue.push_staged(Task(None, name="a"))
        queue.push_staged(Task(None, name="b"))
        queue.push_staged(Task(None, name="c"))
        ((task, err),) = shed_log
        assert task.name == "c"
        assert err.queue_depth == 2
        assert err.max_depth == 2


class TestClassAwareShedVictim:
    """Among equal queue priorities, QoS class standing picks the victim:
    lower-rank staged work is evicted before higher-rank work, and
    shed-ineligible classes are never evicted in favour of a newcomer."""

    def _control(self, shed_log, max_depth=2):
        control = AdmissionControl(
            AdmissionParams(max_depth=max_depth, policy="shed"),
            now_fn=lambda: 0,
            on_shed=lambda task, err: shed_log.append(task.name),
        )
        queue = DualQueue()
        control.attach(queue)
        return control, queue

    def _classes(self):
        from repro.qos.classes import default_classes

        batch, standard, interactive = default_classes()
        return batch, standard, interactive

    def test_lower_class_evicted_before_higher_at_equal_priority(self):
        batch, standard, interactive = self._classes()
        shed_log = []
        _, queue = self._control(shed_log)
        # Same NORMAL queue priority throughout: only class rank differs.
        queue.push_staged(Task(None, name="std", qos=standard))
        queue.push_staged(Task(None, name="batch", qos=batch))
        queue.push_staged(Task(None, name="inter", qos=interactive))
        # The batch task (rank 0) goes, not the standard one (rank 1),
        # even though standard is older.
        assert shed_log == ["batch"]
        assert [t.name for t in queue._staged] == ["std", "inter"]

    def test_newest_among_equal_class_ties(self):
        batch, _, interactive = self._classes()
        shed_log = []
        _, queue = self._control(shed_log)
        queue.push_staged(Task(None, name="b1", qos=batch))
        queue.push_staged(Task(None, name="b2", qos=batch))
        queue.push_staged(Task(None, name="inter", qos=interactive))
        assert shed_log == ["b2"]

    def test_same_class_tie_sheds_the_newcomer(self):
        batch, _, _ = self._classes()
        shed_log = []
        _, queue = self._control(shed_log)
        queue.push_staged(Task(None, name="b1", qos=batch))
        queue.push_staged(Task(None, name="b2", qos=batch))
        late = Task(None, name="late", qos=batch)
        queue.push_staged(late)
        assert shed_log == ["late"]

    def test_ineligible_class_is_never_evicted_for_a_newcomer(self):
        _, _, interactive = self._classes()
        assert not interactive.shed_eligible
        shed_log = []
        _, queue = self._control(shed_log)
        queue.push_staged(Task(None, name="i1", qos=interactive))
        queue.push_staged(Task(None, name="i2", qos=interactive))
        # Another interactive arrival cannot displace staged interactive
        # work; the newcomer itself is shed.
        queue.push_staged(Task(None, name="i3", qos=interactive))
        assert shed_log == ["i3"]
        assert [t.name for t in queue._staged] == ["i1", "i2"]

    def test_unclassed_ties_with_rank_zero_eligible_class(self):
        batch, _, _ = self._classes()
        assert batch.rank == 0 and batch.shed_eligible
        shed_log = []
        _, queue = self._control(shed_log)
        queue.push_staged(Task(None, name="plain"))
        queue.push_staged(Task(None, name="b", qos=batch))
        # A batch arrival ties with both staged tasks: newcomer shed,
        # exactly the pre-QoS behaviour for unclassed workloads.
        queue.push_staged(Task(None, name="late", qos=batch))
        assert shed_log == ["late"]

    def test_queue_priority_still_dominates_class_rank(self):
        batch, _, interactive = self._classes()
        shed_log = []
        _, queue = self._control(shed_log)
        # HIGH-priority batch vs NORMAL-priority interactive: priority wins.
        high_batch = Task(None, name="hb", priority=Priority.HIGH, qos=batch)
        norm_inter = Task(
            None, name="ni", priority=Priority.NORMAL, qos=interactive
        )
        queue.push_staged(norm_inter)
        queue.push_staged(high_batch)
        incoming = Task(None, name="hi", priority=Priority.HIGH, qos=batch)
        queue.push_staged(incoming)
        assert shed_log == ["ni"]


# ---------------------------------------------------------------------------
# satellite: per-worker queue-depth gauges
# ---------------------------------------------------------------------------


class TestWorkerQueueDepthGauge:
    def test_single_runtime_exports_one_gauge_per_worker(self):
        rt = Runtime(platform="haswell", num_cores=3)
        for _ in range(6):
            rt.async_(lambda: 1, work=FixedWork(5_000))
        result = rt.run()
        names = [
            f"/threads{{locality#0/worker-thread#{w}}}/count/queue-depth@gauge"
            for w in range(3)
        ]
        for name in names:
            assert name in result.counters.values
            # Drained run: every hot queue finished empty.
            assert result.counters.get(name) == 0.0

    def test_dist_runtime_mirrors_the_gauge_per_locality(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)
        src = dist.async_(lambda: 1, locality=0, work=FixedWork(1_000))
        dist.dataflow(lambda x: x + 1, [src], locality=1, work=FixedWork(1_000))
        result = dist.run()
        for locality in range(2):
            for worker in range(2):
                name = (
                    f"/threads{{locality#{locality}/worker-thread#{worker}}}"
                    "/count/queue-depth@gauge"
                )
                assert name in result.counters.values


# ---------------------------------------------------------------------------
# a minimal two-port wire for transport-layer tests
# ---------------------------------------------------------------------------


def two_ports(
    *,
    retry: RetryParams | None = None,
    plan: FaultPlan | None = None,
    credits: CreditParams | None = None,
    breaker: BreakerParams | None = None,
    dead_letter_capacity: int = 1024,
):
    """A sender (locality 0, optionally faulty) wired to a receiver."""
    sim = Simulator()
    net = NetworkModel()
    registry = CounterRegistry()
    sender = Parcelport(
        0, sim, net, registry,
        retry=retry,
        injector=FaultInjector(plan) if plan is not None else None,
        credits=credits,
        breaker=breaker,
        dead_letter_capacity=dead_letter_capacity,
    )
    receiver = Parcelport(1, sim, net, registry, retry=retry)
    ports = {0: sender, 1: receiver}
    sender.connect(ports)
    receiver.connect(ports)
    return sim, registry, sender, receiver


# ---------------------------------------------------------------------------
# credit-based flow control
# ---------------------------------------------------------------------------


class TestCreditFlowControl:
    def test_window_bounds_in_flight_and_delivers_everything(self):
        sim, registry, sender, _ = two_ports(
            retry=RetryParams(max_jitter_ns=0),
            credits=CreditParams(window=2),
        )
        delivered = []
        for _ in range(5):
            sender.send(1, "v", 256, delivered.append)
        sim.run()
        assert len(delivered) == 5
        assert sender.unacked_high_water(1) == 2
        assert sender.max_unacked_in_flight == 2
        # Three of the five sends had to park for a credit.
        assert sender.sends_deferred == 3
        assert sender.credits_exhausted_ns > 0
        assert sender.waiting_sends == 0  # lane drained
        snap = registry.snapshot(sim.now)
        assert snap.get("/overload{locality#0/total}/count/credit-waits") == 3
        assert (
            snap.get("/overload{locality#0/total}/time/credits-exhausted") > 0
        )

    def test_baseline_ledger_reports_high_water_without_gating(self):
        # Retry without credits: the unacked ledger still measures, so a
        # baseline run can report how wide the window would have needed to be.
        sim, _, sender, _ = two_ports(retry=RetryParams(max_jitter_ns=0))
        delivered = []
        for _ in range(5):
            sender.send(1, "v", 256, delivered.append)
        sim.run()
        assert len(delivered) == 5
        assert sender.max_unacked_in_flight == 5
        assert sender.sends_deferred == 0
        assert sender.waiting_sends == 0

    def test_retransmission_rides_the_same_credit(self):
        # Half the copies drop: retransmissions must not eat extra credits,
        # or a lossy link would leak the window shut.
        sim, _, sender, _ = two_ports(
            retry=RetryParams(
                ack_timeout_ns=60_000, max_jitter_ns=0, max_retries=6
            ),
            plan=FaultPlan(seed=9, drop_rate=0.5),
            credits=CreditParams(window=2),
        )
        delivered = []
        for _ in range(6):
            sender.send(1, "v", 256, delivered.append)
        sim.run()
        assert len(delivered) == 6
        assert sender.max_unacked_in_flight == 2


# ---------------------------------------------------------------------------
# circuit breakers
# ---------------------------------------------------------------------------


class TestCircuitBreakerStateMachine:
    PARAMS = BreakerParams(
        failure_threshold=2, cooldown_ns=100_000, max_jitter_ns=0
    )

    def test_trip_half_open_close_cycle(self):
        sim = Simulator()
        br = CircuitBreaker(self.PARAMS, sim, seed=0, source=0, destination=1)
        br.record_failure()
        assert br.state is BreakerState.CLOSED
        br.record_failure()
        assert br.state is BreakerState.OPEN
        assert not br.allows_send()
        assert br.opened_at_ns == 0
        sim.run()  # the half-open probe timer fires
        assert sim.now == 100_000
        assert br.state is BreakerState.HALF_OPEN
        assert br.allows_send()
        br.note_dispatch()  # the probe is on the wire
        assert not br.allows_send()  # exactly one probe at a time
        br.record_success()
        assert br.state is BreakerState.CLOSED
        assert br.consecutive_failures == 0
        assert [(t, a, b) for t, a, b in br.transitions] == [
            (0, "closed", "open"),
            (100_000, "open", "half-open"),
            (100_000, "half-open", "closed"),
        ]

    def test_reopen_escalates_the_cooldown_geometrically(self):
        sim = Simulator()
        br = CircuitBreaker(self.PARAMS, sim, seed=0, source=0, destination=1)
        br.record_failure()
        br.record_failure()  # open at t=0, cooldown 100us
        sim.run()
        assert br.state is BreakerState.HALF_OPEN
        br.record_failure()  # failed probe: re-open, cooldown 200us
        assert br.state is BreakerState.OPEN
        sim.run()
        assert sim.now == 300_000
        assert br.state is BreakerState.HALF_OPEN

    def test_transitions_are_seed_deterministic(self):
        jittery = BreakerParams(
            failure_threshold=1, cooldown_ns=100_000, max_jitter_ns=50_000
        )

        def drive():
            sim = Simulator()
            br = CircuitBreaker(jittery, sim, seed=7, source=0, destination=1)
            br.record_failure()
            sim.run()
            br.record_failure()
            sim.run()
            return br.transitions

        assert drive() == drive()


class TestBreakerOnTheWire:
    #: every copy doomed, no retransmissions: each send times out once
    LOSSY = FaultPlan(seed=1, doom_every=1)
    RETRY = RetryParams(ack_timeout_ns=50_000, max_jitter_ns=0, max_retries=0)

    def test_fail_fast_raises_before_booking_the_send(self):
        sim, registry, sender, _ = two_ports(
            retry=self.RETRY,
            plan=self.LOSSY,
            breaker=BreakerParams(
                failure_threshold=1,
                cooldown_ns=50_000_000,
                max_jitter_ns=0,
                fail_fast=True,
            ),
        )
        lost = []
        sender.send(1, "v", 64, lambda p: None, on_lost=lambda p, n: lost.append(p))
        sim.run_until(1_000_000)  # timeout fired, breaker open, loss declared
        assert len(lost) == 1
        with pytest.raises(CircuitOpenError) as info:
            sender.send(1, "v", 64, lambda p: None)
        assert info.value.source == 0
        assert info.value.destination == 1
        assert info.value.consecutive_failures == 1
        assert sender.fast_failures == 1
        snap = registry.snapshot(sim.now)
        # The refused send was never booked: conservation is untouched.
        assert snap.get("/parcels{locality#0/total}/count/sent") == 1
        assert (
            snap.get("/overload{locality#0/total}/count/breaker-fast-failures")
            == 1
        )

    def test_open_breaker_parks_sends_instead_of_transmitting(self):
        sim, registry, sender, _ = two_ports(
            retry=self.RETRY,
            plan=self.LOSSY,
            breaker=BreakerParams(
                failure_threshold=1, cooldown_ns=50_000_000, max_jitter_ns=0
            ),
        )
        sender.send(1, "v", 64, lambda p: None, on_lost=lambda p, n: None)
        sim.run_until(1_000_000)
        assert sender.breakers[1].state is BreakerState.OPEN
        sender.send(1, "v", 64, lambda p: None, on_lost=lambda p, n: None)
        sim.run_until(2_000_000)  # still inside the cooldown
        assert sender.waiting_sends == 1
        assert sender.waiting_for(1)[0].parcel_id == 2
        snap = registry.snapshot(sim.now)
        # Parked: counted as sent, but no wire copy yet (conservation says
        # one copy on the wire, from the first send only).
        assert snap.get("/parcels{locality#0/total}/count/sent") == 2
        assert snap.get("/overload{locality#0/total}/count/breaker-deferred") == 1
        assert snap.get("/overload{locality#0/total}/count/waiting-sends@gauge") == 1


# ---------------------------------------------------------------------------
# satellite: the bounded dead-letter ring
# ---------------------------------------------------------------------------


class TestDeadLetterRing:
    def test_overflow_evicts_oldest_and_counts(self):
        sim, registry, sender, _ = two_ports(
            plan=FaultPlan(seed=1, doom_every=1),  # every copy dies
            dead_letter_capacity=3,
        )
        for _ in range(8):
            sender.send(1, "v", 64, lambda p: None)
        sim.run()
        # The ring keeps the newest three; five were evicted, oldest first.
        assert [p.parcel_id for p in sender.dead_letters] == [6, 7, 8]
        assert sender.dead_letters_dropped == 5
        snap = registry.snapshot(sim.now)
        assert (
            snap.get("/parcels{locality#0/total}/count/dead-letters-dropped")
            == 5
        )

    def test_default_capacity_keeps_everything_small(self):
        sim, _, sender, _ = two_ports(plan=FaultPlan(seed=1, doom_every=1))
        for _ in range(8):
            sender.send(1, "v", 64, lambda p: None)
        sim.run()
        assert len(sender.dead_letters) == 8
        assert sender.dead_letters_dropped == 0


# ---------------------------------------------------------------------------
# the governor
# ---------------------------------------------------------------------------


def _signals(**overrides):
    base = dict(
        idle_rate=0.1,
        overhead_ratio=0.1,
        depth_per_worker=1.0,
        pending_miss_rate=0.1,
        shed_fraction=0.0,
    )
    base.update(overrides)
    return GovernorSignals(**base)


class TestGovernor:
    def test_high_qos_shed_forces_coarsen(self):
        # Premium-tier shedding coarsens even when overhead looks benign:
        # it is the one signal with no acceptable nonzero level.
        gov = OverloadGovernor(grain_ns=10_000)
        action = gov.observe(_signals(high_qos_shed_fraction=0.05))
        assert action.kind == "coarsen"
        assert "high-QoS" in action.reason
        assert gov.grain_ns == 20_000

    def test_high_qos_shed_at_max_grain_falls_through(self):
        gov = OverloadGovernor(grain_ns=4_000_000)
        action = gov.observe(_signals(high_qos_shed_fraction=0.05))
        assert action.kind == "hold"

    def test_from_run_reads_qos_aggregates(self):
        from repro.overload.admission import AdmissionParams
        from repro.overload.config import OverloadConfig
        from repro.qos import (
            PoissonArrivals,
            QosServiceConfig,
            Tenant,
            default_classes,
            run_qos_service,
        )

        batch, _, interactive = default_classes()
        # One core, a tight bound, and interactive offered at ~6x capacity:
        # even the premium tier must shed.
        tenants = [
            Tenant(0, "web", interactive, 4_000, PoissonArrivals(650.0)),
            Tenant(1, "etl", batch, 4_000, PoissonArrivals(650.0)),
        ]
        outcome = run_qos_service(
            tenants,
            QosServiceConfig(
                num_cores=1,
                window_ns=100_000,
                overload=OverloadConfig(
                    admission=AdmissionParams(max_depth=4, policy="shed")
                ),
            ),
        )
        signals = GovernorSignals.from_run(outcome.result)
        web = outcome.stats_for("web")
        assert web.shed > 0
        assert signals.high_qos_shed_fraction == pytest.approx(
            web.shed / web.arrived
        )

    def test_coarsens_under_overhead_and_backlog(self):
        gov = OverloadGovernor(grain_ns=10_000)
        action = gov.observe(_signals(overhead_ratio=0.8, shed_fraction=0.2))
        assert action.kind == "coarsen"
        assert gov.grain_ns == 20_000

    def test_coarsening_saturates_at_max_grain(self):
        params = GovernorParams(max_grain_ns=16_000)
        gov = OverloadGovernor(params, grain_ns=16_000)
        action = gov.observe(_signals(overhead_ratio=0.9, shed_fraction=0.5))
        assert action.kind == "hold"
        assert gov.grain_ns == 16_000

    def test_refines_when_starved_at_coarse_grain(self):
        gov = OverloadGovernor(grain_ns=100_000)
        action = gov.observe(
            _signals(idle_rate=0.6, pending_miss_rate=0.8)
        )
        assert action.kind == "refine"
        assert gov.grain_ns == 50_000

    def test_holds_inside_the_bounds(self):
        gov = OverloadGovernor(grain_ns=10_000)
        assert gov.observe(_signals()).kind == "hold"
        assert gov.grain_ns == 10_000
        assert len(gov.actions) == 1

    def test_initial_grain_validated(self):
        with pytest.raises(ValueError, match="outside"):
            OverloadGovernor(grain_ns=1)

    def test_policy_engine_exports_the_action_counter(self):
        from repro.core.policy import PolicyEngine

        rt = Runtime(platform="haswell", num_cores=2)
        for _ in range(8):
            rt.async_(lambda: 1, work=FixedWork(20_000))
        engine = PolicyEngine(rt, interval_ns=50_000)
        governor = OverloadGovernor(grain_ns=4_000)
        engine.add_policy(governor)
        result = engine.run()
        assert (
            "/overload{locality#0/total}/count/governor-actions"
            in result.counters.values
        )
        assert result.counters.get("/overload/count/governor-actions") == len(
            governor.actions
        )

    def test_tighten_admission_scales_the_live_bound(self):
        class Ctx:
            num_workers = 8

            class runtime:
                admission = AdmissionControl(
                    AdmissionParams(max_depth=64, policy="shed"),
                    now_fn=lambda: 0,
                )

        OverloadGovernor._tighten_admission(Ctx, 4)
        assert Ctx.runtime.admission.max_depth == 32
        # The floor is a quarter of the configured bound.
        OverloadGovernor._tighten_admission(Ctx, 1)
        assert Ctx.runtime.admission.max_depth == 16


# ---------------------------------------------------------------------------
# satellite: watchdog diagnosis under combined crash + drop
# ---------------------------------------------------------------------------


class TestWatchdogDiagnosis:
    def test_names_dead_cone_and_unacked_parcels(self):
        # Locality 0 crashes mid-producer while every parcel on the wire is
        # doomed: the diagnosis must name BOTH starvation causes — the
        # dependency cone that died with the crash, and the transport still
        # burning its retry budget.
        dist = DistRuntime(
            num_localities=2,
            cores_per_locality=2,
            seed=0,
            faults=FaultPlan(
                seed=1, doom_every=1, crashes=(CrashAt(0, 500_000),)
            ),
            retry=RetryParams(max_retries=10),
        )
        # A slow producer on locality 0 dies with the crash; its consumer's
        # proxy on locality 1 can never become ready.
        doomed_src = dist.async_(
            lambda: 7, locality=0, work=FixedWork(1_000_000)
        )
        dist.dataflow(
            lambda x: x + 1, [doomed_src], locality=1, work=FixedWork(1_000)
        )
        # A fast producer on locality 1 ships toward locality 0 over the
        # doomed wire: those copies retry until the watchdog fires.
        live_src = dist.async_(lambda: 3, locality=1, work=FixedWork(1_000))
        dist.dataflow(
            lambda x: x * x, [live_src], locality=0, work=FixedWork(1_000)
        )
        with pytest.raises(WatchdogTimeout) as info:
            dist.run(watchdog_ns=2_000_000)
        message = str(info.value)
        assert "awaiting ack" in message
        assert "depend on crashed locality 0" in message
