"""Tests for the distributed stencil (repro.apps.stencil1d_dist)."""

import numpy as np
import pytest

from repro.apps.stencil1d import initial_condition, serial_reference
from repro.apps.stencil1d_dist import (
    DistStencilConfig,
    run_dist_stencil,
)
from repro.dist import DistConfig


class TestDecomposition:
    def test_owners_are_contiguous_blocks(self):
        config = DistStencilConfig(
            total_points=1 << 12, partition_points=256, time_steps=1
        )
        owners = config.owners(4)
        assert len(owners) == config.num_partitions
        assert owners == sorted(owners)
        # Evenly sized blocks: 16 partitions over 4 localities.
        assert [owners.count(loc) for loc in range(4)] == [4, 4, 4, 4]

    def test_uneven_blocks_differ_by_at_most_one(self):
        config = DistStencilConfig(
            total_points=10 * 257, partition_points=257, time_steps=1
        )
        owners = config.owners(4)  # 10 partitions over 4 localities
        counts = [owners.count(loc) for loc in range(4)]
        assert counts == [3, 3, 2, 2]

    def test_more_localities_than_partitions_rejected(self):
        config = DistStencilConfig(
            total_points=1 << 12, partition_points=1 << 12, time_steps=1
        )
        with pytest.raises(ValueError, match="localities"):
            config.owners(2)

    def test_cross_halos_per_step(self):
        config = DistStencilConfig(
            total_points=1 << 12, partition_points=256, time_steps=1
        )
        assert config.cross_halos_per_step(1) == 0
        assert config.cross_halos_per_step(4) == 8


class TestValidatedRun:
    def test_matches_serial_reference_across_localities(self):
        config = DistStencilConfig(
            total_points=2_048,
            partition_points=256,
            time_steps=4,
            validate=True,
        )
        outcome = run_dist_stencil(
            DistConfig(num_localities=4, cores_per_locality=2, seed=3), config
        )
        expected = serial_reference(
            initial_condition(config.total_points),
            config.time_steps,
            config.heat_coefficient,
        )
        np.testing.assert_allclose(
            outcome.final_array(), expected, rtol=0, atol=1e-12
        )

    def test_two_partition_ring_ships_both_edges(self):
        # NP == L == 2: each partition is BOTH neighbours of the other, so
        # the same source future must ship two different edge projections.
        config = DistStencilConfig(
            total_points=512,
            partition_points=256,
            time_steps=3,
            validate=True,
        )
        outcome = run_dist_stencil(
            DistConfig(num_localities=2, cores_per_locality=2, seed=0), config
        )
        expected = serial_reference(
            initial_condition(config.total_points),
            config.time_steps,
            config.heat_coefficient,
        )
        np.testing.assert_allclose(
            outcome.final_array(), expected, rtol=0, atol=1e-12
        )
        # 2 boundaries * 2 directions * 3 steps.
        assert outcome.result.parcels_sent == 12


class TestParcelAccounting:
    def run_tokens(self, num_localities, steps=4):
        return run_dist_stencil(
            DistConfig(
                num_localities=num_localities, cores_per_locality=2, seed=0
            ),
            DistStencilConfig(
                total_points=1 << 14, partition_points=1 << 10, time_steps=steps
            ),
        ).result

    def test_single_locality_never_touches_the_network(self):
        result = self.run_tokens(1)
        assert result.parcels_sent == 0
        assert result.parcels_received == 0
        assert result.network_wait_ns == 0

    def test_parcels_are_two_per_boundary_per_step(self):
        for num_localities in (2, 4):
            result = self.run_tokens(num_localities, steps=4)
            assert result.parcels_sent == 2 * num_localities * 4
            assert result.parcels_sent == result.parcels_received

    def test_per_locality_counters_balance(self):
        result = self.run_tokens(4, steps=3)
        for loc in range(4):
            sent = result.counters.get(
                f"/parcels{{locality#{loc}/total}}/count/sent"
            )
            received = result.counters.get(
                f"/parcels{{locality#{loc}/total}}/count/received"
            )
            # The ring is symmetric: every locality sends and receives 2
            # halos per step.
            assert sent == received == 2 * 3

    def test_agas_misses_count_neighbours_and_hits_the_rest(self):
        steps = 5
        result = self.run_tokens(4, steps=steps)
        # Each locality resolves its two neighbour partitions' gids once
        # (the misses), then hits the cache for the remaining steps.
        assert result.agas_cache_misses == 2 * 4
        assert result.agas_cache_hits == 2 * 4 * (steps - 1)
