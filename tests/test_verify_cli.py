"""The ``python -m repro.verify`` CLI: fuzz, shrunk reproducers, replay."""

import json
import pathlib
import subprocess
import sys

from repro.verify.cli import main
from repro.verify.spec import generate_spec

REPO = pathlib.Path(__file__).resolve().parent.parent


def test_fuzz_clean_seeds_exit_zero(tmp_path, capsys):
    assert main(["fuzz", "--seeds", "0:3", "--out", str(tmp_path / "r")]) == 0
    out = capsys.readouterr().out
    assert "3 spec(s), 0 failing" in out
    assert "all parity invariants held" in out
    assert not (tmp_path / "r").exists()  # no reproducers on a clean run


def test_fuzz_plant_writes_shrunk_reproducer(tmp_path, capsys):
    out_dir = tmp_path / "r"
    assert (
        main(
            ["fuzz", "--seeds", "4", "--plant", "thread", "--out", str(out_dir)]
        )
        == 1
    )
    assert "DIVERGENCE" in capsys.readouterr().out
    payload = json.loads((out_dir / "reproducer-4.json").read_text())
    assert payload["planted"] == "thread"
    assert payload["shrunk_size"] < payload["original_size"]
    assert payload["shrunk_size"] <= 4  # a <= 4-task reproducer
    assert any(f["rule"] == "PF407" for f in payload["findings"])


def test_replay_reproducer_reapplies_the_plant_deterministically(
    tmp_path, capsys
):
    out_dir = tmp_path / "r"
    main(["fuzz", "--seeds", "4", "--plant", "thread", "--out", str(out_dir)])
    capsys.readouterr()
    path = str(out_dir / "reproducer-4.json")
    assert main(["replay", path]) == 1
    first = capsys.readouterr().out
    assert main(["replay", path]) == 1
    second = capsys.readouterr().out
    assert first == second  # bit-identical replay, finding text included
    assert "PF407" in first


def test_replay_accepts_a_bare_spec_and_exits_clean(tmp_path, capsys):
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(generate_spec(1).to_json())
    assert main(["replay", str(spec_file)]) == 0
    assert "clean" in capsys.readouterr().out


def test_budget_exhaustion_is_reported_not_silent(capsys):
    assert main(["fuzz", "--seeds", "0:5", "--budget-s", "0"]) == 0
    out = capsys.readouterr().out
    assert "budget exhausted" in out
    assert "NOT checked" in out


def test_list_invariants_prints_the_pf4xx_catalogue(capsys):
    assert main(["list-invariants"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("PF401", "PF402", "PF403", "PF404", "PF405", "PF406", "PF407"):
        assert rule_id in out


def test_usage_errors(tmp_path, capsys):
    assert main([]) == 2
    assert main(["replay", str(tmp_path / "missing.json")]) == 2
    assert main(["fuzz", "--seeds", "9:9"]) == 2
    bad = tmp_path / "bad.json"
    bad.write_text('{"spec": {"patterns": ["nope"]}}')
    assert main(["replay", str(bad)]) == 2


def test_module_entrypoint_runs(tmp_path):
    proc = subprocess.run(
        [sys.executable, "-m", "repro.verify", "fuzz", "--seeds", "0:2",
         "--out", str(tmp_path / "r")],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "all parity invariants held" in proc.stdout
