"""Error-path audit: a raising task body must never hang a join.

The contract under BOTH executors: a task body that raises sets the
exception on its future; a dataflow downstream of a failed dependency gets
that exception (its body never runs); and every thread blocked in
``wait()`` is woken — including when the dependency was failed from outside
any worker thread (the path that used to bypass the condition notify).
"""

import pytest

from repro import Future, Runtime, ThreadRuntime
from repro.runtime.work import FixedWork


class Boom(RuntimeError):
    pass


def _raiser():
    raise Boom("task body failed")


# -- simulated executor ------------------------------------------------------------


def test_sim_async_exception_lands_on_future():
    rt = Runtime(num_cores=2)
    f = rt.async_(_raiser, work=FixedWork(1_000))
    rt.run()  # must complete, not deadlock
    assert f.has_exception
    with pytest.raises(Boom):
        _ = f.value


def test_sim_dataflow_downstream_of_failure_gets_exception():
    rt = Runtime(num_cores=2)
    ok = rt.async_(lambda: 1, work=FixedWork(1_000))
    bad = rt.async_(_raiser, work=FixedWork(1_000))
    ran = []

    def downstream(a, b):  # pragma: no cover - must never run
        ran.append((a, b))
        return a + b

    joined = rt.dataflow(downstream, [ok, bad], name="join")
    rt.run()
    assert joined.has_exception
    assert ran == []  # the body was never spawned
    with pytest.raises(Boom):
        _ = joined.value


def test_sim_failure_propagates_through_chains():
    rt = Runtime(num_cores=2)
    head = rt.async_(_raiser, work=FixedWork(1_000))
    mid = rt.dataflow(lambda x: x + 1, [head])
    tail = rt.dataflow(lambda x: x * 2, [mid])
    rt.run()
    with pytest.raises(Boom):
        _ = tail.value


# -- thread executor ---------------------------------------------------------------


def test_thread_async_exception_lands_on_future():
    with ThreadRuntime(num_workers=2) as rt:
        f = rt.async_(_raiser)
        with pytest.raises(Boom):
            rt.wait(f, timeout_s=10.0)


def test_thread_dataflow_downstream_of_failure_wakes_waiter():
    with ThreadRuntime(num_workers=2) as rt:
        ok = rt.async_(lambda: 1)
        bad = rt.async_(_raiser)
        joined = rt.dataflow(lambda a, b: a + b, [ok, bad], name="join")
        # Regression: this wait() used to be able to hang — the failed-
        # dependency path set the exception without notifying _all_done.
        with pytest.raises(Boom):
            rt.wait(joined, timeout_s=10.0)


def test_thread_externally_failed_dependency_wakes_waiter():
    # The dependency is failed from the *main* thread, not a worker: the
    # dataflow's launch callback runs synchronously here and must still
    # wake any thread blocked in wait().
    with ThreadRuntime(num_workers=2) as rt:
        gate = Future("gate")
        joined = rt.dataflow(lambda x: x, [gate], name="joined")
        import threading

        results = []

        def waiter():
            try:
                rt.wait(joined, timeout_s=10.0)
            except BaseException as exc:  # noqa: BLE001 - recording
                results.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        gate.set_exception(Boom("external failure"))
        t.join(timeout=10.0)
        assert not t.is_alive(), "waiter hung on a failed dependency"
        assert len(results) == 1 and isinstance(results[0], Boom)


def test_thread_future_satisfied_inside_raw_body_wakes_waiter():
    # A raw Task body (spawned via spawn(), not async_) satisfies a future
    # directly; termination must notify waiters even while other tasks are
    # still outstanding.
    import threading as _threading
    import time as _time

    from repro.runtime.task import Task

    with ThreadRuntime(num_workers=2) as rt:
        side = Future("side-channel")
        release = _threading.Event()

        def body():
            side.set_value(99)

        def straggler():
            release.wait(10.0)

        rt.spawn(Task(straggler, name="straggler"))
        rt.spawn(Task(body, name="producer"))
        start = _time.monotonic()
        value = rt.wait(side, timeout_s=10.0)
        waited = _time.monotonic() - start
        release.set()
        assert value == 99
        # Must be woken by the producer's termination, not the straggler's.
        assert waited < 5.0


def test_thread_raw_body_error_recorded_not_fatal():
    with ThreadRuntime(num_workers=1) as rt:
        from repro.runtime.task import Task

        t = Task(_raiser, name="bad-raw")
        rt.spawn(t)
        rt.wait_idle(timeout_s=10.0)
        assert isinstance(t.result, Boom)
        errors = rt.registry.get("/threads/count/errors").get_value()
        assert errors == 1.0
        # The worker survived: it can still run more work.
        f = rt.async_(lambda: "alive")
        assert rt.wait(f, timeout_s=10.0) == "alive"
