"""Integration tests: every experiment runs end-to-end at smoke scale.

These tests verify the harness machinery (runners produce well-formed
FigureResults, the CLI drives them, markdown renders); the *scientific*
shape checks are exercised at bench/default scale by the benchmarks and the
EXPERIMENTS.md generation, because several shapes need more tasks per core
than the smoke scale provides.
"""

import pytest

from repro.experiments import cli
from repro.experiments.config import get_scale

SMOKE = get_scale("smoke")


class TestTable1:
    def test_run_and_checks(self):
        from repro.experiments import table1_platforms as exp

        fig = exp.run(SMOKE)
        assert exp.shape_checks(fig) == []
        assert "Table I" in fig.notes[0]
        assert "28" in fig.notes[0]  # Haswell cores


class TestFigureRunnersSmoke:
    """Each runner produces panels/series of the expected shape."""

    def test_fig3_single_platform(self):
        from repro.experiments import fig3_execution_time as exp

        fig = exp.run(SMOKE.with_(points_per_decade=1), platforms=["sandy-bridge"])
        (panel,) = fig.panels
        assert "Sandy Bridge" in panel
        series = fig.panels[panel]
        assert len(series) == 6  # the paper's SB core counts
        assert all(s.points for s in series)

    def test_fig4_structure(self):
        from repro.experiments import fig4_idle_rate_haswell as exp

        fig = exp.run(SMOKE.with_(points_per_decade=1))
        assert set(fig.panels) == {
            "haswell 8 cores", "haswell 16 cores", "haswell 28 cores",
        }
        for series_list in fig.panels.values():
            labels = {s.label for s in series_list}
            assert labels == {"execution time (s)", "idle-rate"}
            idle = next(s for s in series_list if s.label == "idle-rate")
            assert all(0.0 <= y <= 1.0 for _, y in idle.points)

    def test_fig6_wait_times_positive_masses(self):
        from repro.experiments import fig6_wait_time as exp

        fig = exp.run(SMOKE)
        (panel,) = fig.panels
        assert len(fig.panels[panel]) == 4  # 4/8/16/28 cores
        problems = exp.shape_checks(fig)
        assert problems == [], problems

    def test_fig7_series_complete(self):
        from repro.experiments import fig7_decomposition_haswell as exp

        fig = exp.run(SMOKE.with_(points_per_decade=1))
        for series_list in fig.panels.values():
            assert {s.label for s in series_list} == {
                "Exec Time", "HPX-TM", "WT", "HPX-TM & WT",
            }

    def test_fig9_series_complete(self):
        from repro.experiments import fig9_pending_queue_haswell as exp

        fig = exp.run(SMOKE.with_(points_per_decade=1))
        for series_list in fig.panels.values():
            assert {s.label for s in series_list} == {
                "execution time (s)", "pending-Q accesses",
            }
            accesses = next(
                s for s in series_list if s.label == "pending-Q accesses"
            )
            assert all(y > 0 for _, y in accesses.points)

    def test_selection_outcomes_attached(self):
        from repro.experiments import selection_experiment as exp

        fig = exp.run(SMOKE)
        outcomes = fig.outcomes  # type: ignore[attr-defined]
        assert [o.rule for o in outcomes] == [
            "min-time-oracle", "idle-rate<=30%", "min-pending-accesses",
        ]
        assert outcomes[0].slowdown == 1.0


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in cli.EXPERIMENT_MODULES:
            assert name in out

    def test_run_table1(self, capsys):
        rc = cli.main(["table1", "--scale", "smoke", "--no-plots"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all shape checks passed" in out

    def test_markdown_output(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        rc = cli.main(
            ["table1", "--scale", "smoke", "--no-plots", "--markdown", str(path)]
        )
        assert rc == 0
        text = path.read_text()
        assert "## table1" in text
        assert "**Paper claims**" in text
        assert "**Shape checks**" in text

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            cli.run_experiment("fig99", "smoke")

    def test_no_experiments_errors(self):
        with pytest.raises(SystemExit):
            cli.main([])

    def test_all_expands(self):
        # Don't actually run 'all' (slow); check the expansion logic via
        # the registry being non-trivial.
        assert len(cli.EXPERIMENT_MODULES) == 23

    def test_list_subcommand(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        for figure in ("figT", "figD", "figR", "figQ", "figC", "figE", "figH"):
            assert figure in out
        # One line per experiment: name plus its one-line title.
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) == len(cli.EXPERIMENT_MODULES)
        assert any("METG" in line for line in lines)


class TestFigRSmoke:
    """figR (resilience vs grain) runs end-to-end at smoke scale.

    Unlike most figures, figR's shape checks are asserted at smoke scale
    too: determinism, validation, conservation and the retransmission/
    recovery scaling hold at any scale by construction, and the grain
    grid is wide enough for the minimum shift even at smoke.
    """

    def test_run_and_checks(self):
        from repro.experiments import figR_resilience_grain as exp

        fig = exp.run(SMOKE)
        problems = exp.shape_checks(fig)
        assert problems == [], problems
        summary = next(p for p in fig.panels if p.startswith("summary"))
        labels = {s.label for s in fig.panels[summary]}
        assert "best grain (points)" in labels
        assert "determinism (1 = bit-identical rerun)" in labels
        assert "validated (1 = matches serial reference)" in labels
        # One panel per drop rate plus the summary.
        assert len(fig.panels) == len(exp.DROP_RATES) + 1


class TestFigTSmoke:
    """figT (Task Bench METG) runs end-to-end at smoke scale.

    Like figR, figT asserts its shape checks at smoke scale too: the
    pattern ordering, METG monotonicity, selection-rule containment and
    determinism are all properties of the simulator, not of sweep density,
    and the smoke grid (64x8, 2 grains/decade) resolves them.
    """

    def test_run_and_checks(self):
        from repro.experiments import figT_taskbench_metg as exp

        fig = exp.run(SMOKE)
        problems = exp.shape_checks(fig)
        assert problems == [], problems
        labels = {s.label for s in fig.panels["summary"]}
        assert "METG(50%) by pattern (x = catalogue index)" in labels
        assert "METG(50%) vs cores (stencil_1d)" in labels
        assert "bit-identical rerun (1 = yes)" in labels
        curves = fig.panels[f"efficiency vs grain ({exp.CORES} cores)"]
        assert {s.label for s in curves} == set(exp.METG_PATTERNS)


class TestFigOSmoke:
    """figO (overload control) runs end-to-end at smoke scale.

    Like figR/figT, figO's shape checks are asserted at smoke scale too:
    divergence-vs-plateau, bound enforcement, breaker capping, governor
    convergence, determinism and conservation are properties of the
    control stack, not of sweep density.
    """

    def test_run_and_checks(self):
        from repro.experiments import figO_overload as exp

        fig = exp.run(SMOKE)
        problems = exp.shape_checks(fig)
        assert problems == [], problems
        labels = {s.label for s in fig.panels["summary"]}
        assert "determinism (1 = bit-identical rerun)" in labels
        assert "conservation violations" in labels
        goodput = {s.label for s in fig.panels["A admission: goodput"]}
        assert goodput == set(exp.POLICIES)


class TestFigQSmoke:
    """figQ (QoS priority isolation) runs end-to-end at smoke scale.

    Like figR/figT/figO, figQ's shape checks are asserted at smoke scale
    too: isolation, class-aware shedding, the ablation gap, determinism
    and conservation are properties of the QoS stack, not of sweep
    density, and the fixed 300 us arrival window already yields hundreds
    of latency samples per tenant.
    """

    def test_run_and_checks(self):
        from repro.experiments import figQ_qos_isolation as exp

        fig = exp.run(SMOKE)
        problems = exp.shape_checks(fig)
        assert problems == [], problems
        labels = {s.label for s in fig.panels["summary"]}
        assert "determinism (1 = bit-identical rerun)" in labels
        assert "conservation violations" in labels
        tenants = {s.label for s in fig.panels["A p99 sojourn (us)"]}
        assert tenants == {"web", "api", "etl"}
        ablation = {s.label for s in fig.panels["C scheduler ablation at 4x"]}
        assert "web p99 (us)" in ablation


class TestFigESmoke:
    """figE (deadline-miss rate vs grain) runs end-to-end at smoke scale.

    The RT shape claims — the miss-rate U at the baseline overhead
    regime, the best grain strictly coarsening with overhead, the
    protocol contrast (inversion under ``none``, bounded blocking under
    inheritance), determinism and conservation — are properties of the
    stack, not of sweep density, so they are asserted at smoke scale
    with the reduced grain/regime grid.
    """

    def test_run_and_checks(self):
        from repro.experiments import figE_rt_deadline as exp

        fig = exp.run(SMOKE)
        problems = exp.shape_checks(fig)
        assert problems == [], problems
        labels = {s.label for s in fig.panels["summary"]}
        assert "determinism (1 = bit-identical rerun)" in labels
        assert "conservation violations" in labels
        for scheduler in exp.SCHEDULERS_SMOKE:
            panel = f"miss rate vs grain ({scheduler})"
            factors = {s.label for s in fig.panels[panel]}
            assert factors == {
                f"overhead x{f:g}" for f in exp.FACTORS_SMOKE
            }
        protocols = {
            s.label for s in fig.panels["resource protocols at valley grain"]
        }
        assert protocols == {
            "inversions",
            "max blocked (ns)",
            "ctrl deadline misses",
        }


class TestFigHSmoke:
    """figH (tail tolerance vs grain) runs end-to-end at smoke scale.

    The gray-failure shape claims — the unprotected best grain coarsening
    with straggler severity, the hedged/speculating leg bounded by 2x
    fault-free, speculation within budget, zero crash declarations, and
    bit-identical reruns — are properties of the stack, not of sweep
    density, so they are asserted in full at smoke scale.
    """

    def test_run_and_checks(self):
        from repro.experiments import figH_tail_tolerance as exp

        fig = exp.run(SMOKE)
        problems = exp.shape_checks(fig)
        assert problems == [], problems
        summary = "summary (x = straggler severity)"
        labels = {s.label for s in fig.panels[summary]}
        assert "determinism (1 = bit-identical rerun)" in labels
        assert "best grain, tail off (ns)" in labels
        assert "speculation budget" in labels
        for severity in exp.SEVERITIES:
            panel = f"{exp.PLATFORM} straggler {severity:g}x"
            legs = {s.label for s in fig.panels[panel]}
            assert legs == {
                "tail tolerance on: p99 makespan (s)",
                "tail tolerance off: p99 makespan (s)",
            }

    def test_severe_straggler_stays_gray(self):
        from repro.experiments import figH_tail_tolerance as exp

        result, _ = exp.run_cell(
            10, 4, severity=exp.SEVERITIES[-1], tail_on=True, seed=exp.SEED
        )
        assert result.crashes_detected == 0
        assert result.degraded_events > 0
        assert result.tasks_speculated > 0


class TestExtensionExperimentsSmoke:
    """The extension experiments run end-to-end at smoke scale."""

    @pytest.mark.slow
    def test_throttling_runs(self):
        from repro.experiments import throttling_experiment as exp

        fig = exp.run(SMOKE)
        (panel,) = fig.panels
        labels = {s.label for s in fig.panels[panel]}
        assert "plain (28 workers)" in labels
        assert "throttled" in labels
        assert "final worker limit" in labels

    @pytest.mark.slow
    def test_cov_runs(self):
        from repro.experiments import cov_experiment as exp

        fig = exp.run(SMOKE.with_(points_per_decade=1))
        (panel,) = fig.panels
        for series in fig.panels[panel]:
            assert all(v >= 0.0 for _, v in series.points)

    @pytest.mark.slow
    def test_wavefront_runs_and_checks(self):
        from repro.experiments import wavefront_generality as exp

        fig = exp.run(SMOKE)
        problems = exp.shape_checks(fig)
        assert problems == [], problems
