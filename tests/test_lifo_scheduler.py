"""Unit tests for the Priority Local-LIFO scheduler variant."""

from repro.runtime.task import Task
from repro.schedulers import SCHEDULERS, make_scheduler
from repro.schedulers.lifo import LifoDualQueue, PriorityLocalLifoScheduler
from repro.schedulers.base import WorkSource
from repro.sim.machine import Machine
from repro.sim.platforms import HASWELL


def task(name="t"):
    return Task(lambda: None, name=name)


def attached(cores=4):
    p = PriorityLocalLifoScheduler()
    p.attach(Machine(HASWELL, cores))
    return p


class TestLifoDualQueue:
    def test_local_pops_are_lifo(self):
        q = LifoDualQueue()
        a, b = task("a"), task("b")
        q.push_pending(a)
        q.push_pending(b)
        assert q.pop_pending() is b
        assert q.pop_pending() is a

    def test_staged_pops_are_lifo(self):
        q = LifoDualQueue()
        a, b = task("a"), task("b")
        q.push_staged(a)
        q.push_staged(b)
        assert q.pop_staged() is b

    def test_steal_accessors_are_fifo(self):
        q = LifoDualQueue()
        a, b = task("a"), task("b")
        q.push_pending(a)
        q.push_pending(b)
        assert q.steal_pending() is a

    def test_access_counting_preserved(self):
        q = LifoDualQueue()
        q.pop_pending()
        assert q.stats.pending_accesses == 1
        assert q.stats.pending_misses == 1


class TestScheduler:
    def test_registered(self):
        assert SCHEDULERS["priority-local-lifo"] is PriorityLocalLifoScheduler
        assert isinstance(
            make_scheduler("priority-local-lifo"), PriorityLocalLifoScheduler
        )

    def test_depth_first_local_order(self):
        p = attached()
        a, b, c = task("a"), task("b"), task("c")
        for t in (a, b, c):
            p.enqueue_staged(t, 0)
        assert p.find_work(0).task is c
        assert p.find_work(0).task is b
        assert p.find_work(0).task is a

    def test_numa_search_order_unchanged(self):
        # Fig. 1's search order must be inherited intact: same-domain
        # staged work beats same-domain pending work.
        p = attached(cores=4)
        t_staged, t_pending = task("s"), task("p")
        p.enqueue_pending(t_pending, 1)
        p.enqueue_staged(t_staged, 2)
        found = p.find_work(0)
        assert found.task is t_staged
        assert found.source is WorkSource.NUMA_STAGED

    def test_runs_full_stencil(self):
        from repro.apps.stencil1d import StencilConfig, run_stencil
        from repro.runtime.runtime import RuntimeConfig

        cfg = StencilConfig(
            total_points=4096, partition_points=256, time_steps=3
        )
        out = run_stencil(
            RuntimeConfig(num_cores=4, scheduler="priority-local-lifo", seed=1),
            cfg,
        )
        assert out.result.tasks_executed == cfg.total_tasks

    def test_lifo_vs_fifo_differ_in_execution_order(self):
        def completion_order(scheduler):
            from repro.runtime.runtime import Runtime, RuntimeConfig
            from repro.runtime.work import FixedWork

            rt = Runtime(
                RuntimeConfig(num_cores=1, scheduler=scheduler, seed=1)
            )
            order = []
            for i in range(6):
                rt.spawn(
                    Task(lambda i=i: order.append(i), work=FixedWork(1_000)),
                    worker=0,
                )
            rt.run()
            return order

        fifo = completion_order("priority-local")
        lifo = completion_order("priority-local-lifo")
        assert fifo == sorted(fifo)
        assert lifo != fifo
