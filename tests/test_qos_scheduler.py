"""Unit tests for the Clutch-style QosBucketScheduler.

Covers the three root-bucket mechanisms (EDF selection, warp on wakeup,
starvation avoidance), the Fig. 1 thread phase inside a bucket, priority
fallback for unclassed tasks, and the registry/executor integration.
"""

import pytest

from repro.qos.classes import QosClass, default_classes
from repro.qos.scheduler import QosBucketScheduler
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Priority, Task
from repro.schedulers import SCHEDULERS, make_scheduler
from repro.schedulers.base import WorkSource
from repro.sim.machine import Machine
from repro.sim.platforms import HASWELL


def task(name="t", priority=Priority.NORMAL, qos=None, created_ns=0) -> Task:
    t = Task(lambda: None, name=name, priority=priority, qos=qos)
    t.created_ns = created_ns
    return t


def attached(cores=4, **kwargs) -> QosBucketScheduler:
    policy = QosBucketScheduler(**kwargs)
    policy.attach(Machine(HASWELL, cores))
    return policy


BATCH, STANDARD, INTERACTIVE = default_classes()


class TestConstruction:
    def test_registered_in_the_scheduler_registry(self):
        assert "qos" in SCHEDULERS
        policy = make_scheduler("qos")
        assert isinstance(policy, QosBucketScheduler)
        assert policy.name == "qos"

    def test_default_classes_are_the_three_tiers(self):
        policy = QosBucketScheduler()
        assert [c.name for c in policy.classes] == [
            "batch", "standard", "interactive",
        ]

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ValueError):
            QosBucketScheduler(classes=[BATCH, BATCH])

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            QosBucketScheduler(classes=[])

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            QosBucketScheduler(warp_dispatches=-1)
        with pytest.raises(ValueError):
            QosBucketScheduler(starvation_limit=0)


class TestRouting:
    def test_classed_task_lands_in_its_bucket(self):
        policy = attached()
        policy.enqueue_staged(task(qos=INTERACTIVE), 1)
        assert policy.bucket_queue("interactive", 1).staged_len == 1
        assert policy.bucket_queue("batch", 1).staged_len == 0

    def test_unclassed_task_routed_by_priority(self):
        policy = attached()
        policy.enqueue_staged(task(priority=Priority.LOW), 0)
        policy.enqueue_staged(task(priority=Priority.NORMAL), 0)
        policy.enqueue_staged(task(priority=Priority.HIGH), 0)
        assert policy.bucket_queue("batch", 0).staged_len == 1
        assert policy.bucket_queue("standard", 0).staged_len == 1
        assert policy.bucket_queue("interactive", 0).staged_len == 1

    def test_unknown_class_falls_back_to_priority(self):
        other = QosClass(name="elsewhere", rank=9, latency_target_ns=1_000)
        policy = attached()
        policy.enqueue_staged(task(qos=other, priority=Priority.LOW), 0)
        assert policy.bucket_queue("batch", 0).staged_len == 1

    def test_depth_introspection(self):
        policy = attached()
        policy.enqueue_staged(task(qos=BATCH), 2)
        policy.enqueue_pending(task(qos=INTERACTIVE), 2)
        policy.enqueue_staged(task(qos=STANDARD), 0)
        assert policy.worker_queue_depth(2) == 2
        assert policy.worker_queue_depth(0) == 1
        assert policy.queued_tasks() == 3


class TestEdfSelection:
    def test_tighter_latency_target_wins_at_equal_arrival(self):
        policy = attached()
        policy.enqueue_staged(task("b", qos=BATCH, created_ns=100), 0)
        policy.enqueue_staged(task("i", qos=INTERACTIVE, created_ns=100), 0)
        found = policy.find_work(0)
        assert found is not None and found.task.name == "i"

    def test_much_older_batch_work_overtakes_by_deadline(self):
        policy = attached()
        # Batch arrived 5 ms + 1 us before its target; interactive just now.
        policy.enqueue_staged(task("b", qos=BATCH, created_ns=0), 0)
        policy.enqueue_staged(
            task("i", qos=INTERACTIVE, created_ns=BATCH.latency_target_ns), 0
        )
        found = policy.find_work(0)
        assert found is not None and found.task.name == "b"

    def test_staged_converts_through_pending(self):
        policy = attached()
        policy.enqueue_staged(task("i", qos=INTERACTIVE), 0)
        found = policy.find_work(0)
        assert found.source is WorkSource.LOCAL_STAGED
        q = policy.bucket_queue("interactive", 0)
        assert q.stats.pending_accesses >= 1  # the conversion registered

    def test_steals_within_the_class_bucket(self):
        policy = attached(cores=4)
        policy.enqueue_staged(task("i", qos=INTERACTIVE), 3)
        found = policy.find_work(0)
        assert found is not None and found.task.name == "i"
        assert found.source.was_stolen

    def test_empty_policy_finds_nothing(self):
        assert attached().find_work(0) is None


class TestWarp:
    def test_wakeup_arms_warp_and_dispatch_consumes_it(self):
        policy = attached(warp_dispatches=2)
        policy.enqueue_staged(task(qos=INTERACTIVE), 0)
        bucket = policy._buckets[policy._by_name["interactive"]]
        assert bucket.warp_remaining == 2
        assert policy.find_work(0) is not None
        assert bucket.warp_remaining == 1

    def test_warp_advances_the_deadline(self):
        policy = attached()
        bucket = policy._buckets[policy._by_name["interactive"]]
        policy.enqueue_staged(task(qos=INTERACTIVE, created_ns=1_000), 0)
        warped = bucket.deadline()
        bucket.warp_remaining = 0
        assert bucket.deadline() == warped + INTERACTIVE.warp_ns

    def test_push_into_nonempty_bucket_does_not_rearm(self):
        policy = attached(warp_dispatches=2)
        policy.enqueue_staged(task(qos=INTERACTIVE), 0)
        bucket = policy._buckets[policy._by_name["interactive"]]
        bucket.warp_remaining = 0
        policy.enqueue_staged(task(qos=INTERACTIVE), 0)
        assert bucket.warp_remaining == 0

    def test_zero_warp_class_never_arms(self):
        policy = attached()
        assert BATCH.warp_ns == 0
        policy.enqueue_staged(task(qos=BATCH), 0)
        bucket = policy._buckets[policy._by_name["batch"]]
        assert bucket.warp_remaining == 0


class TestStarvationAvoidance:
    def test_skipped_bucket_is_eventually_forced(self):
        policy = attached(starvation_limit=3)
        # Batch weight 1 -> limit 3.  Keep interactive deadlines earlier.
        policy.enqueue_staged(task("b", qos=BATCH, created_ns=0), 0)
        for k in range(6):
            policy.enqueue_staged(
                task(f"i{k}", qos=INTERACTIVE, created_ns=1), 0
            )
        served = []
        for _ in range(4):
            found = policy.find_work(0)
            served.append(found.task.name)
        # Three interactive dispatches skip batch three times; the fourth
        # dispatch is forced to serve the starved batch bucket.
        assert served == ["i0", "i1", "i2", "b"]

    def test_heavier_classes_starve_sooner(self):
        policy = attached(starvation_limit=8)
        buckets = {c.name: b for c, b in zip(policy.classes, policy._buckets)}
        assert buckets["batch"].starvation_limit == 8  # weight 1
        assert buckets["standard"].starvation_limit == 4  # weight 2
        assert buckets["interactive"].starvation_limit == 2  # weight 4


class TestExecutorIntegration:
    def test_plain_workload_completes_under_qos_scheduler(self):
        rt = Runtime(RuntimeConfig(num_cores=4, scheduler="qos"))
        futures = [rt.async_(lambda k=k: k * k) for k in range(20)]
        rt.run()
        assert [f.value for f in futures] == [k * k for k in range(20)]

    def test_contention_penalty_grows_with_workers(self):
        policy = QosBucketScheduler()
        assert policy.shared_structure_penalty_ns(1) == 0
        assert policy.shared_structure_penalty_ns(8) > 0
