"""Unit tests for AGAS-lite (repro.dist.agas)."""

import pytest

from repro.counters.registry import CounterRegistry
from repro.dist.agas import AgasCache, AgasParams, AgasService


def make_cache(locality=1, params=None):
    service = AgasService()
    registry = CounterRegistry()
    cache = AgasCache(service, locality, registry, params)
    return service, registry, cache


class TestService:
    def test_register_and_home(self):
        service = AgasService()
        gid = service.register(2, name="partition[0]")
        assert service.home(gid) == 2
        assert len(service) == 1

    def test_gids_are_unique(self):
        service = AgasService()
        a = service.register(0)
        b = service.register(0)
        assert a.gid != b.gid

    def test_unregistered_gid_raises(self):
        service, _, cache = make_cache()
        foreign = AgasService().register(0)
        with pytest.raises(KeyError):
            cache.resolve(foreign)

    def test_negative_locality_rejected(self):
        with pytest.raises(ValueError):
            AgasService().register(-1)


class TestCache:
    def test_first_resolution_is_a_miss_then_hits(self):
        service, registry, cache = make_cache(
            params=AgasParams(hit_ns=100, miss_ns=5_000)
        )
        gid = service.register(3)
        assert cache.resolve(gid) == (3, 5_000)
        assert cache.resolve(gid) == (3, 100)
        assert cache.resolve(gid) == (3, 100)
        prefix = "/agas{locality#1/total}"
        assert registry.get(f"{prefix}/count/cache-misses").get_value() == 1
        assert registry.get(f"{prefix}/count/cache-hits").get_value() == 2
        assert registry.get(f"{prefix}/time/resolve").get_value() == 5_200

    def test_local_gid_still_misses_once(self):
        # Even a gid homed on the resolving locality must be learned once.
        service, _, cache = make_cache(locality=0)
        gid = service.register(0)
        _, first_cost = cache.resolve(gid)
        _, second_cost = cache.resolve(gid)
        assert first_cost == cache.params.miss_ns
        assert second_cost == cache.params.hit_ns

    def test_misses_count_distinct_gids(self):
        service, registry, cache = make_cache()
        gids = [service.register(i % 2) for i in range(4)]
        for gid in gids + gids:
            cache.resolve(gid)
        prefix = "/agas{locality#1/total}"
        assert registry.get(f"{prefix}/count/cache-misses").get_value() == 4
        assert registry.get(f"{prefix}/count/cache-hits").get_value() == 4

    def test_caches_are_per_locality(self):
        service = AgasService()
        registry = CounterRegistry()
        cache_a = AgasCache(service, 0, registry)
        cache_b = AgasCache(service, 1, registry)
        gid = service.register(0)
        assert cache_a.resolve(gid)[1] == cache_a.params.miss_ns
        # Locality 1's cache is cold regardless of locality 0's lookups.
        assert cache_b.resolve(gid)[1] == cache_b.params.miss_ns

    def test_params_validation(self):
        with pytest.raises(ValueError):
            AgasParams(hit_ns=-1)
        with pytest.raises(ValueError):
            AgasParams(miss_ns=-1)
