"""Unit tests for the task-parallel graph traversal workload."""

import pytest

from repro.apps.graphapp import GraphAppConfig, make_layered_graph, run_graph_bfs
from repro.runtime.runtime import RuntimeConfig


def rc(cores=4, scheduler="priority-local", seed=1):
    return RuntimeConfig(
        platform="haswell", num_cores=cores, scheduler=scheduler, seed=seed
    )


class TestGraphGeneration:
    def test_layer_structure(self):
        cfg = GraphAppConfig(layers=5, mean_width=10, seed=3)
        g = make_layered_graph(cfg)
        layers = {data["layer"] for _, data in g.nodes(data=True)}
        assert layers == set(range(5))

    def test_edges_only_between_adjacent_layers(self):
        cfg = GraphAppConfig(layers=6, mean_width=8, seed=5)
        g = make_layered_graph(cfg)
        for u, v in g.edges:
            assert g.nodes[v]["layer"] - g.nodes[u]["layer"] == 1

    def test_every_nonroot_vertex_has_predecessor(self):
        cfg = GraphAppConfig(layers=4, mean_width=6, seed=2)
        g = make_layered_graph(cfg)
        for v, data in g.nodes(data=True):
            if data["layer"] > 0:
                assert g.in_degree(v) >= 1

    def test_deterministic_per_seed(self):
        cfg = GraphAppConfig(seed=11)
        g1, g2 = make_layered_graph(cfg), make_layered_graph(cfg)
        assert sorted(g1.edges) == sorted(g2.edges)

    def test_widths_vary(self):
        cfg = GraphAppConfig(layers=20, mean_width=16, seed=4)
        g = make_layered_graph(cfg)
        widths = {}
        for _, data in g.nodes(data=True):
            widths[data["layer"]] = widths.get(data["layer"], 0) + 1
        assert len(set(widths.values())) > 1  # irregular by construction

    def test_validation(self):
        with pytest.raises(ValueError):
            GraphAppConfig(layers=0)
        with pytest.raises(ValueError):
            GraphAppConfig(visits_per_task=0)
        with pytest.raises(ValueError):
            GraphAppConfig(edges_per_vertex=0)


class TestTraversal:
    def test_visits_every_vertex_once(self):
        cfg = GraphAppConfig(layers=8, mean_width=12, visit_ns=1_000, seed=7)
        result = run_graph_bfs(rc(), cfg)
        g = make_layered_graph(cfg)
        assert result.tasks_executed == sum(
            -(-w // cfg.visits_per_task)
            for w in _layer_widths(g).values()
        )

    def test_batching_reduces_task_count(self):
        cfg1 = GraphAppConfig(layers=6, mean_width=16, visits_per_task=1, seed=9)
        cfg4 = GraphAppConfig(layers=6, mean_width=16, visits_per_task=4, seed=9)
        r1 = run_graph_bfs(rc(), cfg1)
        r4 = run_graph_bfs(rc(), cfg4)
        assert r4.tasks_executed < r1.tasks_executed

    def test_batching_is_the_granularity_knob(self):
        """With tiny visits, batching (coarsening) wins — the same
        granularity trade-off as the stencil's partition size."""
        fine = GraphAppConfig(
            layers=12, mean_width=64, visit_ns=300, visits_per_task=1, seed=3
        )
        batched = GraphAppConfig(
            layers=12, mean_width=64, visit_ns=300, visits_per_task=16, seed=3
        )
        t_fine = run_graph_bfs(rc(cores=8), fine)
        t_batched = run_graph_bfs(rc(cores=8), batched)
        assert t_batched.execution_time_ns < t_fine.execution_time_ns

    def test_runs_under_every_scheduler(self):
        cfg = GraphAppConfig(layers=5, mean_width=8, seed=2)
        for scheduler in ("priority-local", "static", "global-queue", "numa-blind"):
            result = run_graph_bfs(rc(scheduler=scheduler), cfg)
            assert result.execution_time_ns > 0

    def test_stealing_beats_static_on_irregular_load(self):
        cfg = GraphAppConfig(
            layers=16, mean_width=24, visit_ns=50_000, seed=13
        )
        stealing = run_graph_bfs(rc(cores=8, scheduler="priority-local"), cfg)
        static = run_graph_bfs(rc(cores=8, scheduler="static"), cfg)
        assert static.execution_time_ns > stealing.execution_time_ns


def _layer_widths(g):
    widths: dict[int, int] = {}
    for _, data in g.nodes(data=True):
        widths[data["layer"]] = widths.get(data["layer"], 0) + 1
    return widths
