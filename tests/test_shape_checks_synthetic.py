"""Shape-check functions of each figure module, exercised on synthetic
FigureResults (no simulation — these pin the *checking* logic itself)."""

from repro.experiments import (
    fig3_execution_time,
    fig4_idle_rate_haswell,
    fig6_wait_time,
    fig9_pending_queue_haswell,
)
from repro.experiments.decomposition_common import decomposition_shape_checks
from repro.experiments.report import FigureResult, Series


def fig_of(figure_id, panels, logx=True):
    fig = FigureResult(
        figure_id=figure_id, title="synthetic", xlabel="x", ylabel="y",
        logx=logx,
    )
    for panel, series in panels.items():
        for label, points in series.items():
            fig.add_series(panel, Series(label, points))
    return fig


GRAINS = [1e2, 1e3, 1e4, 1e5, 1e6]


class TestFig3Checks:
    def good_panel(self):
        return {
            "1 cores": {"1 cores": None},
        }

    def test_accepts_u_shapes(self):
        fig = fig_of("fig3", {
            "(c) Haswell": {
                "8 cores": list(zip(GRAINS, [5.0, 2.0, 1.8, 2.5, 6.0])),
                "1 cores": list(zip(GRAINS, [9.0, 6.6, 6.5, 6.5, 6.6])),
            },
        })
        assert fig3_execution_time.shape_checks(fig) == []

    def test_rejects_flat_multicore_series(self):
        fig = fig_of("fig3", {
            "(c) Haswell": {
                "8 cores": list(zip(GRAINS, [2.0, 2.0, 2.0, 2.0, 2.0])),
            },
        })
        assert fig3_execution_time.shape_checks(fig)

    def test_rejects_unsaturated_scaling(self):
        # Best times keep halving with cores: the paper's curves saturate.
        fig = fig_of("fig3", {
            "(c) Haswell": {
                "4 cores": list(zip(GRAINS, [16.0, 8.0, 7.9, 9.0, 20.0])),
                "8 cores": list(zip(GRAINS, [8.0, 4.0, 3.9, 4.5, 10.0])),
                "16 cores": list(zip(GRAINS, [4.0, 2.0, 1.0, 2.2, 5.0])),
            },
        })
        problems = fig3_execution_time.shape_checks(fig)
        assert any("saturate" in p for p in problems)


class TestFig4Checks:
    def panel(self, idle, time):
        return {
            "execution time (s)": list(zip(GRAINS, time)),
            "idle-rate": list(zip(GRAINS, idle)),
        }

    def test_accepts_paper_shape(self):
        fig = fig_of("fig4", {
            "haswell 8 cores": self.panel(
                idle=[0.9, 0.4, 0.1, 0.3, 0.8],
                time=[5.0, 2.2, 1.9, 1.8, 6.0],  # falls while idle rises
            ),
        })
        assert fig4_idle_rate_haswell.shape_checks(fig) == []

    def test_rejects_low_fine_end(self):
        fig = fig_of("fig4", {
            "haswell 8 cores": self.panel(
                idle=[0.3, 0.2, 0.1, 0.3, 0.8],
                time=[5.0, 2.2, 1.9, 1.8, 6.0],
            ),
        })
        problems = fig4_idle_rate_haswell.shape_checks(fig)
        assert any("fine-end idle-rate" in p for p in problems)

    def test_rejects_missing_decoupled_region(self):
        fig = fig_of("fig4", {
            "haswell 8 cores": self.panel(
                idle=[0.9, 0.4, 0.1, 0.3, 0.8],
                time=[5.0, 2.2, 1.9, 2.0, 6.0],  # time rises with idle
            ),
        })
        problems = fig4_idle_rate_haswell.shape_checks(fig)
        assert any("idle-rate rises while execution" in p for p in problems)


class TestFig6Checks:
    def test_accepts_double_monotonicity(self):
        xs = [1e4, 3e4, 5e4]
        fig = fig_of("fig6", {
            "panel": {
                "4 cores": list(zip(xs, [10.0, 20.0, 30.0])),
                "8 cores": list(zip(xs, [30.0, 60.0, 90.0])),
            },
        }, logx=False)
        assert fig6_wait_time.shape_checks(fig) == []

    def test_rejects_decreasing_in_grain(self):
        xs = [1e4, 3e4, 5e4]
        fig = fig_of("fig6", {
            "panel": {"4 cores": list(zip(xs, [30.0, 20.0, 10.0]))},
        }, logx=False)
        assert fig6_wait_time.shape_checks(fig)

    def test_rejects_core_order_inversion(self):
        xs = [1e4, 3e4, 5e4]
        fig = fig_of("fig6", {
            "panel": {
                "4 cores": list(zip(xs, [30.0, 60.0, 90.0])),
                "8 cores": list(zip(xs, [10.0, 20.0, 30.0])),
            },
        }, logx=False)
        problems = fig6_wait_time.shape_checks(fig)
        assert any("below" in p for p in problems)


class TestFig7Checks:
    def panel(self, exec_t, tm, wt):
        combined = [a + b for a, b in zip(tm, wt)]
        return {
            "Exec Time": list(zip(GRAINS, exec_t)),
            "HPX-TM": list(zip(GRAINS, tm)),
            "WT": list(zip(GRAINS, wt)),
            "HPX-TM & WT": list(zip(GRAINS, combined)),
        }

    def test_accepts_paper_shape(self):
        fig = fig_of("fig7", {
            "haswell 8 cores": self.panel(
                exec_t=[5.0, 2.0, 1.8, 2.5, 6.0],
                tm=[4.5, 0.3, 0.2, 0.9, 5.5],
                wt=[0.2, 1.5, 1.4, 1.2, -0.5],
            ),
        })
        assert decomposition_shape_checks(fig) == []

    def test_rejects_positive_wait_tail(self):
        fig = fig_of("fig7", {
            "haswell 8 cores": self.panel(
                exec_t=[5.0, 2.0, 1.8, 2.5, 6.0],
                tm=[4.5, 0.3, 0.2, 0.9, 5.5],
                wt=[0.2, 1.5, 1.4, 1.2, 0.4],
            ),
        })
        problems = decomposition_shape_checks(fig)
        assert any("not negative" in p for p in problems)

    def test_rejects_combined_cost_above_exec(self):
        fig = fig_of("fig7", {
            "haswell 8 cores": self.panel(
                exec_t=[5.0, 2.0, 1.8, 2.5, 6.0],
                tm=[4.5, 2.3, 2.2, 2.9, 5.5],  # TM alone exceeds exec mid-curve
                wt=[0.2, 1.5, 1.4, 1.2, -0.5],
            ),
        })
        problems = decomposition_shape_checks(fig)
        assert any("exceeds execution time" in p for p in problems)


class TestFig9Checks:
    def test_accepts_u_shaped_accesses(self):
        fig = fig_of("fig9", {
            "haswell 8 cores": {
                "execution time (s)": list(zip(GRAINS, [5.0, 2.0, 1.8, 2.5, 6.0])),
                "pending-Q accesses": list(
                    zip(GRAINS, [9e6, 8e5, 2e5, 9e5, 4e6])
                ),
            },
        })
        assert fig9_pending_queue_haswell.shape_checks(fig) == []

    def test_rejects_monotone_accesses(self):
        fig = fig_of("fig9", {
            "haswell 8 cores": {
                "execution time (s)": list(zip(GRAINS, [5.0, 2.0, 1.8, 2.5, 6.0])),
                "pending-Q accesses": list(
                    zip(GRAINS, [9e6, 8e5, 2e5, 1e5, 5e4])
                ),
            },
        })
        assert fig9_pending_queue_haswell.shape_checks(fig)

    def test_rejects_misleading_minimum(self):
        # Minimum accesses at a grain whose time is 2x the best.
        fig = fig_of("fig9", {
            "haswell 8 cores": {
                "execution time (s)": list(zip(GRAINS, [5.0, 2.0, 1.8, 4.0, 6.0])),
                "pending-Q accesses": list(
                    zip(GRAINS, [9e6, 8e5, 5e5, 2e5, 4e6])
                ),
            },
        })
        problems = fig9_pending_queue_haswell.shape_checks(fig)
        assert any("slower than the best" in p for p in problems)
