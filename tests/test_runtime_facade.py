"""Unit tests for the Runtime facade and RunResult."""

import pytest

from repro.runtime.runtime import Runtime, RuntimeConfig, RunResult
from repro.runtime.work import FixedWork
from repro.schedulers.variants import StaticScheduler
from repro.sim.platforms import HASWELL


class TestRuntimeConfig:
    def test_platform_by_name_and_spec(self):
        assert RuntimeConfig(platform="haswell").resolve_platform() is HASWELL
        assert RuntimeConfig(platform=HASWELL).resolve_platform() is HASWELL

    def test_scheduler_by_name_and_instance(self):
        assert RuntimeConfig().resolve_scheduler().name == "priority-local"
        custom = StaticScheduler()
        assert RuntimeConfig(scheduler=custom).resolve_scheduler() is custom

    def test_kwargs_construction(self):
        rt = Runtime(platform="sb", num_cores=2)
        assert rt.platform.name.startswith("Sandy")
        assert rt.machine.num_cores == 2

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            Runtime(RuntimeConfig(), num_cores=2)


class TestAsync:
    def test_async_returns_future_with_value(self):
        rt = Runtime(num_cores=1)
        f = rt.async_(lambda: 21 * 2)
        rt.run()
        assert f.value == 42

    def test_async_with_args(self):
        rt = Runtime(num_cores=1)
        f = rt.async_(lambda a, b: a + b, 1, 2)
        rt.run()
        assert f.value == 3

    def test_async_exception_lands_in_future(self):
        rt = Runtime(num_cores=1)

        def boom():
            raise ValueError("task failed")

        f = rt.async_(boom)
        rt.run()
        assert f.has_exception
        with pytest.raises(ValueError, match="task failed"):
            f.value

    def test_dataflow_through_runtime(self):
        rt = Runtime(num_cores=2)
        a = rt.async_(lambda: 10, work=FixedWork(100))
        b = rt.async_(lambda: 20, work=FixedWork(100))
        c = rt.dataflow(lambda x, y: x + y, [a, b])
        rt.run()
        assert c.value == 30


class TestRun:
    def test_single_use(self):
        rt = Runtime(num_cores=1)
        rt.async_(lambda: None)
        rt.run()
        with pytest.raises(RuntimeError, match="single-use"):
            rt.run()

    def test_result_fields(self):
        rt = Runtime(num_cores=2, seed=5)
        for _ in range(4):
            rt.async_(lambda: None, work=FixedWork(1_000))
        result = rt.run()
        assert isinstance(result, RunResult)
        assert result.num_cores == 2
        assert result.tasks_executed == 4
        assert result.execution_time_ns > 0
        assert result.execution_time_s == result.execution_time_ns / 1e9
        assert result.platform_name == "Haswell (HW)"

    def test_result_counter_properties(self):
        rt = Runtime(num_cores=2)
        for _ in range(8):
            rt.async_(lambda: None, work=FixedWork(2_000))
        result = rt.run()
        assert result.task_duration_ns > 0
        assert result.task_overhead_ns > 0
        assert result.cumulative_exec_ns <= result.cumulative_func_ns
        assert 0.0 <= result.idle_rate <= 1.0
        assert result.pending_accesses >= 8
        assert result.phases == 8

    def test_interval_sampling(self):
        rt = Runtime(num_cores=2)
        for _ in range(32):
            rt.async_(lambda: None, work=FixedWork(50_000))
        rt.run(sample_interval_ns=20_000)
        assert len(rt.sampler.samples) >= 2
        total_tasks = sum(
            s.get("/threads/count/cumulative") for s in rt.sampler.samples
        )
        assert total_tasks <= 32

    def test_invalid_sample_interval(self):
        rt = Runtime(num_cores=1)
        with pytest.raises(ValueError):
            rt.run(sample_interval_ns=0)

    def test_timer_counters_flag_changes_time(self):
        def total(flag):
            rt = Runtime(num_cores=1, seed=9, timer_counters=flag)
            for _ in range(50):
                rt.async_(lambda: None, work=FixedWork(1_000))
            return rt.run().execution_time_ns

        assert total(True) > total(False)
