"""Unit tests for execution tracing and timeline analysis."""

import pytest

from repro.apps.stencil1d import StencilConfig, build_stencil_graph
from repro.core.timeline import (
    average_concurrency,
    concurrency_profile,
    critical_path_ns,
    render_gantt,
    wave_count,
    worker_utilization,
)
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Task
from repro.runtime.work import FixedWork
from repro.sim.trace import ExecutionTrace, PhaseRecord


def traced_run(cores=4, n_tasks=40, work_ns=10_000, seed=1):
    rt = Runtime(RuntimeConfig(platform="haswell", num_cores=cores, seed=seed,
                               trace=True))
    for i in range(n_tasks):
        rt.spawn(Task(lambda: None, work=FixedWork(work_ns)), worker=i % cores)
    rt.run()
    return rt.trace


class TestTraceRecording:
    def test_one_record_per_phase(self):
        trace = traced_run(n_tasks=25)
        assert len(trace.phases) == 25
        assert trace.task_count == 25

    def test_trace_validates(self):
        trace = traced_run(cores=8, n_tasks=100)
        assert trace.validate() == []

    def test_finish_time_recorded(self):
        trace = traced_run()
        assert trace.finish_ns > 0
        assert all(p.end_ns <= trace.finish_ns for p in trace.phases)

    def test_steals_recorded_when_imbalanced(self):
        rt = Runtime(RuntimeConfig(platform="haswell", num_cores=4, seed=2,
                                   trace=True))
        for _ in range(40):
            rt.spawn(Task(lambda: None, work=FixedWork(50_000)), worker=0)
        rt.run()
        assert rt.trace.steals
        thief_ids = {s.thief for s in rt.trace.steals}
        assert thief_ids - {0}  # someone other than the victim stole

    def test_untraced_run_has_no_trace(self):
        rt = Runtime(RuntimeConfig(num_cores=1))
        rt.async_(lambda: None)
        rt.run()
        assert rt.trace is None

    def test_suspension_produces_two_phase_records(self):
        from repro.runtime.future import Future

        rt = Runtime(RuntimeConfig(num_cores=1, trace=True))
        gate = Future()

        def suspender():
            yield gate

        t = Task(suspender, work=FixedWork(1_000))
        rt.spawn(t)
        rt.spawn(Task(lambda: gate.set_value(1), work=FixedWork(20_000)))
        rt.run()
        assert len(rt.trace.phases_of_task(t.task_id)) == 2

    def test_validate_catches_overlap(self):
        trace = ExecutionTrace(num_workers=1)
        trace.record_phase(PhaseRecord(1, "a", 0, 1, 0, 10, 10, 100, "local"))
        trace.record_phase(PhaseRecord(2, "b", 0, 1, 50, 10, 60, 150, "local"))
        assert any("overlap" in p for p in trace.validate())

    def test_validate_catches_mgmt_gap_mismatch(self):
        trace = ExecutionTrace(num_workers=1)
        trace.record_phase(PhaseRecord(1, "a", 0, 1, 0, 10, 30, 100, "local"))
        assert any("mgmt gap" in p for p in trace.validate())


class TestUtilization:
    def test_split_sums_to_total(self):
        trace = traced_run(cores=4)
        for u in worker_utilization(trace):
            assert u.exec_ns + u.mgmt_ns + u.idle_ns == u.total_ns
            assert 0.0 <= u.exec_fraction <= 1.0
            assert 0.0 <= u.idle_fraction <= 1.0

    def test_balanced_load_similar_utilization(self):
        trace = traced_run(cores=4, n_tasks=400, work_ns=5_000)
        fractions = [u.exec_fraction for u in worker_utilization(trace)]
        assert max(fractions) - min(fractions) < 0.2

    def test_starved_workers_idle(self):
        # 1 task on 4 cores: three workers are fully idle.
        trace = traced_run(cores=4, n_tasks=1, work_ns=100_000)
        idle_workers = [
            u for u in worker_utilization(trace) if u.exec_ns == 0
        ]
        assert len(idle_workers) == 3


class TestConcurrency:
    def test_profile_bounded_by_workers(self):
        trace = traced_run(cores=4, n_tasks=64)
        profile = concurrency_profile(trace)
        assert all(0 <= level <= 4 for _, level in profile)
        assert max(level for _, level in profile) == 4

    def test_average_concurrency_matches_exec_sum(self):
        trace = traced_run(cores=4, n_tasks=64)
        avg = average_concurrency(trace)
        expected = sum(p.duration_ns for p in trace.phases) / trace.finish_ns
        assert avg == pytest.approx(expected)

    def test_empty_trace(self):
        trace = ExecutionTrace(num_workers=2)
        assert concurrency_profile(trace) == [(0, 0)]
        assert average_concurrency(trace) == 0.0

    def test_wave_count_on_barrier_schedule(self):
        # Coarse stencil: 2 partitions per step on 2 cores => each time step
        # is its own wave of width 2.
        rt = Runtime(RuntimeConfig(num_cores=2, seed=3, trace=True))
        cfg = StencilConfig(
            total_points=200_000, partition_points=100_000, time_steps=4
        )
        build_stencil_graph(rt, cfg)
        rt.run()
        waves = wave_count(rt.trace, threshold_fraction=0.9)
        assert waves >= 3  # one per step, modulo pipelining at the seams


class TestCriticalPath:
    def test_serial_chain_equals_sum(self):
        trace = ExecutionTrace(num_workers=1)
        t = 0
        for i in range(5):
            trace.record_phase(
                PhaseRecord(i, f"t{i}", 0, 1, t, 10, t + 10, t + 110, "local")
            )
            t += 110
        trace.finish_ns = t
        assert critical_path_ns(trace) == 5 * 110

    def test_parallel_phases_not_chained(self):
        trace = ExecutionTrace(num_workers=2)
        trace.record_phase(PhaseRecord(1, "a", 0, 1, 0, 0, 0, 100, "local"))
        trace.record_phase(PhaseRecord(2, "b", 1, 1, 0, 0, 0, 100, "local"))
        trace.finish_ns = 100
        assert critical_path_ns(trace) == 100

    def test_bounds_makespan_from_below(self):
        trace = traced_run(cores=4, n_tasks=64)
        assert critical_path_ns(trace) <= trace.finish_ns

    def test_empty(self):
        assert critical_path_ns(ExecutionTrace(num_workers=1)) == 0


class TestGantt:
    def test_renders_rows_per_worker(self):
        trace = traced_run(cores=3, n_tasks=12)
        art = render_gantt(trace, width=60)
        lines = art.splitlines()
        assert len([l for l in lines if l.startswith("w")]) == 3
        assert "#" in art

    def test_caps_worker_rows(self):
        trace = traced_run(cores=8, n_tasks=16)
        art = render_gantt(trace, max_workers=4)
        assert "more workers" in art

    def test_empty_trace(self):
        assert render_gantt(ExecutionTrace(num_workers=1)) == "(empty trace)"
