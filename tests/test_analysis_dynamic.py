"""Dynamic ``check=True`` mode: leaks, cycles, and lockset races.

The acceptance bar: the checkers must catch an *injected* dependency cycle
and a leaked future under both runtimes, while leaving clean programs
untouched, and the lockset monitor must flag unlocked cross-thread mutation
but not lock-guarded access.
"""

import threading

import pytest

from repro import Future, Runtime, RuntimeConfig, ThreadRuntime
from repro.analysis import CheckError, RuntimeChecker


# -- simulated runtime -------------------------------------------------------------


def test_clean_run_passes_checks():
    rt = Runtime(RuntimeConfig(num_cores=2, check=True))
    parts = [rt.async_(lambda i=i: i) for i in range(8)]
    total = rt.dataflow(lambda *xs: sum(xs), parts, name="total")
    rt.run()
    assert total.value == sum(range(8))


def test_leaked_future_detected_at_run_end():
    rt = Runtime(RuntimeConfig(num_cores=2, check=True))
    never = Future("never")  # nobody will ever satisfy this
    rt.dataflow(lambda x: x, [never], name="starved")
    with pytest.raises(CheckError) as exc_info:
        rt.run()
    findings = exc_info.value.findings
    assert [f.rule_id for f in findings] == ["DC301"]
    assert "'starved'" in findings[0].message


def test_injected_dependency_cycle_detected_before_run():
    rt = Runtime(RuntimeConfig(num_cores=2, check=True))
    a = rt.dataflow(lambda x: x, [Future("seed")], name="a")
    b = rt.dataflow(lambda x: x, [a], name="b")
    # Inject the back edge a <- b, closing the cycle a -> b -> a.
    a.dependencies = (b,)
    with pytest.raises(CheckError) as exc_info:
        rt.run()
    findings = exc_info.value.findings
    assert any(f.rule_id == "DC302" for f in findings)
    msg = next(f.message for f in findings if f.rule_id == "DC302")
    assert "a" in msg and "b" in msg


def test_check_off_means_no_registration_overhead():
    rt = Runtime(num_cores=2)
    assert rt.checker is None
    rt.async_(lambda: 1)
    rt.run()


# -- thread runtime ----------------------------------------------------------------


def test_thread_runtime_clean_shutdown_passes():
    with ThreadRuntime(num_workers=2, check=True) as rt:
        fs = [rt.async_(lambda i=i: i * i) for i in range(10)]
        total = rt.dataflow(lambda *xs: sum(xs), fs)
        assert rt.wait(total) == sum(i * i for i in range(10))


def test_thread_runtime_leaked_future_detected_at_shutdown():
    rt = ThreadRuntime(num_workers=2, check=True).start()
    never = Future("never")
    rt.dataflow(lambda x: x, [never], name="starved")
    with pytest.raises(CheckError) as exc_info:
        rt.shutdown()
    assert any(f.rule_id == "DC301" for f in exc_info.value.findings)


def test_thread_runtime_injected_cycle_detected_at_shutdown():
    rt = ThreadRuntime(num_workers=2, check=True).start()
    seed = Future("seed")
    a = rt.dataflow(lambda x: x, [seed], name="a")
    b = rt.dataflow(lambda x: x, [a], name="b")
    a.dependencies = (b,)
    with pytest.raises(CheckError) as exc_info:
        rt.shutdown()
    assert any(f.rule_id == "DC302" for f in exc_info.value.findings)


def test_unclean_shutdown_skips_checks():
    # wait=False means we did not drain; pending futures are not "leaks".
    rt = ThreadRuntime(num_workers=1, check=True).start()
    rt.dataflow(lambda x: x, [Future("never")])
    rt.shutdown(wait=False)  # must not raise


# -- lockset monitor ----------------------------------------------------------------


def _hammer(state, n_threads: int = 4, iters: int = 200, lock=None):
    """Increment state["n"] from several threads, optionally locked."""

    def work():
        for _ in range(iters):
            if lock is not None:
                with lock:
                    state["n"] = state["n"] + 1
            else:
                state["n"] = state["n"] + 1

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_lockset_detects_unlocked_cross_thread_writes():
    checker = RuntimeChecker("test")
    state = checker.monitor({"n": 0}, "counter")
    _hammer(state)
    findings = checker.race_findings()
    assert len(findings) == 1
    assert findings[0].rule_id == "DC303"
    assert "counter['n']" in findings[0].message


def test_lockset_accepts_lock_guarded_writes():
    checker = RuntimeChecker("test")
    state = checker.monitor({"n": 0}, "counter")
    lock = checker.tracked_lock("counter-lock")
    _hammer(state, lock=lock)
    assert checker.race_findings() == []
    assert state["n"] == 800  # and the lock actually serialized the updates


def test_lockset_single_thread_is_never_a_race():
    checker = RuntimeChecker("test")
    state = checker.monitor([0], "arr")
    for _ in range(100):
        state[0] = state[0] + 1
    assert checker.race_findings() == []


def test_lockset_read_only_sharing_is_clean():
    checker = RuntimeChecker("test")
    state = checker.monitor({"n": 42}, "config")
    reads = []

    def read():
        for _ in range(50):
            reads.append(state["n"])

    threads = [threading.Thread(target=read) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert checker.race_findings() == []
    assert set(reads) == {42}


def test_monitor_inside_thread_runtime_tasks():
    # A barrier forces the four tasks onto four distinct worker threads at
    # the same time (tiny tasks would otherwise all land on one worker and
    # single-thread access is, correctly, not a race).
    barrier = threading.Barrier(4, timeout=10.0)
    rt = ThreadRuntime(num_workers=4, check=True).start()
    shared = rt.checker.monitor({"hits": 0}, "shared")

    def bump():
        barrier.wait()
        shared["hits"] = shared["hits"] + 1

    fs = [rt.async_(bump) for _ in range(4)]
    for f in fs:
        rt.wait(f)
    # 4 threads, no lock: the monitor must flag it (the increment itself
    # may or may not lose updates under the GIL — the *lockset* is empty
    # either way, which is the point of Eraser-style checking), and the
    # checked shutdown must surface it.
    assert [f.rule_id for f in rt.checker.race_findings()] == ["DC303"]
    with pytest.raises(CheckError) as exc_info:
        rt.shutdown()
    assert any(f.rule_id == "DC303" for f in exc_info.value.findings)


def test_monitor_findings_do_not_fail_clean_shutdown_when_guarded():
    with ThreadRuntime(num_workers=4, check=True) as rt:
        lock = rt.checker.tracked_lock("shared-lock")
        shared = rt.checker.monitor({"hits": 0}, "shared")

        def bump():
            with lock:
                shared["hits"] = shared["hits"] + 1

        fs = [rt.async_(bump) for _ in range(16)]
        for f in fs:
            rt.wait(f)
    assert shared["hits"] == 16
