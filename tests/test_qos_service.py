"""Unit tests for repro.qos.service and the per-tenant counter surface."""

import pytest

from repro.overload.admission import AdmissionParams
from repro.overload.config import OverloadConfig
from repro.qos import (
    BurstyArrivals,
    PoissonArrivals,
    QosServiceConfig,
    Tenant,
    default_classes,
    run_qos_service,
)
from repro.qos.classes import HIST_BUCKETS_US

BATCH, STANDARD, INTERACTIVE = default_classes()

SHED64 = OverloadConfig(admission=AdmissionParams(max_depth=64, policy="shed"))


def tenants(inter_util=0.15, batch_util=0.5, grain=2_000, cores=8):
    return [
        Tenant(
            0, "web", INTERACTIVE, grain,
            PoissonArrivals(grain / (cores * inter_util)),
        ),
        Tenant(
            1, "etl", BATCH, grain,
            BurstyArrivals(grain / (cores * batch_util)),
        ),
    ]


class TestServiceRun:
    def test_conservation_per_tenant(self):
        out = run_qos_service(
            tenants(), QosServiceConfig(window_ns=200_000, overload=SHED64)
        )
        assert out.conserved()
        for s in out.stats.values():
            assert s.arrived > 0
            assert s.arrived == s.completed + s.shed

    def test_bit_identical_rerun(self):
        cfg = QosServiceConfig(window_ns=200_000, overload=SHED64)
        a = run_qos_service(tenants(batch_util=2.0), cfg)
        b = run_qos_service(tenants(batch_util=2.0), cfg)
        assert a.result.execution_time_ns == b.result.execution_time_ns
        assert a.result.counters.values == b.result.counters.values
        for tid in a.stats:
            assert a.stats[tid].sojourn_ns == b.stats[tid].sojourn_ns

    def test_latency_samples_match_completions(self):
        out = run_qos_service(tenants(), QosServiceConfig(window_ns=150_000))
        for s in out.stats.values():
            assert len(s.sojourn_ns) == s.completed
            assert sum(s.hist) == s.completed
            assert all(x >= 0 for x in s.sojourn_ns)

    def test_stats_for_by_name(self):
        out = run_qos_service(tenants(), QosServiceConfig(window_ns=100_000))
        assert out.stats_for("web") is out.stats[0]
        with pytest.raises(KeyError):
            out.stats_for("nobody")

    def test_validation(self):
        with pytest.raises(ValueError):
            run_qos_service([], QosServiceConfig())
        ts = tenants()
        dup = [ts[0], Tenant(0, "copy", BATCH, 1_000, PoissonArrivals(1e3))]
        with pytest.raises(ValueError):
            run_qos_service(dup, QosServiceConfig())
        with pytest.raises(ValueError):
            QosServiceConfig(window_ns=0)
        with pytest.raises(ValueError):
            QosServiceConfig(num_cores=0)


class TestCounterSurface:
    def test_tenant_counters_track_stats(self):
        out = run_qos_service(
            tenants(batch_util=2.0),
            QosServiceConfig(window_ns=200_000, overload=SHED64),
        )
        counters = out.result.counters
        for tenant in out.tenants:
            s = out.stats[tenant.tenant_id]
            n = tenant.tenant_id
            assert counters.get(f"/qos{{tenant#{n}}}/count/arrived") == s.arrived
            assert (
                counters.get(f"/qos{{tenant#{n}}}/count/completed")
                == s.completed
            )
            assert counters.get(f"/qos{{tenant#{n}}}/count/shed") == s.shed
            assert counters.get(
                f"/qos{{tenant#{n}}}/time/latency-p99@gauge"
            ) == s.p(0.99)

    def test_histogram_counters_cover_every_completion(self):
        out = run_qos_service(tenants(), QosServiceConfig(window_ns=150_000))
        counters = out.result.counters
        for tenant in out.tenants:
            total = sum(
                counters.get(
                    f"/qos{{tenant#{tenant.tenant_id}}}/count/latency-le-{b}us"
                )
                for b in HIST_BUCKETS_US
            ) + counters.get(
                f"/qos{{tenant#{tenant.tenant_id}}}/count/latency-le-inf"
            )
            assert total == out.stats[tenant.tenant_id].completed

    def test_high_qos_aggregates_cover_top_rank_only(self):
        out = run_qos_service(
            tenants(batch_util=2.0),
            QosServiceConfig(window_ns=200_000, overload=SHED64),
        )
        counters = out.result.counters
        web = out.stats_for("web")
        assert counters.get("/qos/count/high-arrived") == web.arrived
        assert counters.get("/qos/count/high-shed") == web.shed


class TestSchedulerChoice:
    def test_default_policy_is_qos_buckets_over_tenant_classes(self):
        from repro.qos.scheduler import QosBucketScheduler
        from repro.qos.service import _resolve_policy

        policy = _resolve_policy(QosServiceConfig(), tuple(tenants()))
        assert isinstance(policy, QosBucketScheduler)
        assert {c.name for c in policy.classes} == {"interactive", "batch"}

    def test_explicit_baseline_scheduler_is_honoured(self):
        out = run_qos_service(
            tenants(),
            QosServiceConfig(window_ns=100_000, scheduler="priority-local"),
        )
        assert out.conserved()
        assert all(s.completed > 0 for s in out.stats.values())
