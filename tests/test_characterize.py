"""Unit tests for the characterization driver (the paper's methodology)."""

import pytest

from repro.apps.stencil1d import stencil_run_fn
from repro.core.characterize import (
    CharacterizationReport,
    characterize,
    default_partition_sweep,
)

TOTAL = 1 << 16
RUN_FN = stencil_run_fn(TOTAL, time_steps=2)


class TestDefaultSweep:
    def test_covers_range(self):
        sweep = default_partition_sweep(10_000, finest=100, points_per_decade=2)
        assert sweep[0] == 100
        assert sweep[-1] == 10_000
        assert sweep == sorted(set(sweep))

    def test_geometric_spacing(self):
        sweep = default_partition_sweep(100_000, finest=100, points_per_decade=1)
        assert sweep == [100, 1_000, 10_000, 100_000]

    def test_single_point_when_finest_is_total(self):
        assert default_partition_sweep(512, finest=512) == [512]

    def test_validation(self):
        with pytest.raises(ValueError):
            default_partition_sweep(100, finest=0)
        with pytest.raises(ValueError):
            default_partition_sweep(100, finest=101)
        with pytest.raises(ValueError):
            default_partition_sweep(100, finest=10, points_per_decade=0)


@pytest.fixture(scope="module")
def report() -> CharacterizationReport:
    return characterize(
        RUN_FN,
        [512, 4096, TOTAL],
        platform="haswell",
        num_cores=4,
        repetitions=2,
        seed=1,
    )


class TestCharacterize:
    def test_one_point_per_grain(self, report):
        assert report.grains() == [512, 4096, TOTAL]

    def test_repetitions_recorded(self, report):
        assert all(p.repetitions == 2 for p in report.points)
        assert all(p.execution_time_s.n == 2 for p in report.points)

    def test_single_core_reference_measured(self, report):
        for p in report.points:
            assert p.task_duration_1core_ns is not None
            assert p.task_duration_1core_ns > 0
            assert p.metrics.wait_time_per_task_ns is not None

    def test_task_counts_match_structure(self, report):
        # ceil(65536/512)=128 partitions x 2 steps.
        assert report.point_at(512).tasks_executed == 256
        assert report.point_at(TOTAL).tasks_executed == 2

    def test_metrics_computed_from_means(self, report):
        p = report.point_at(4096)
        assert p.metrics.num_cores == 4
        assert p.metrics.execution_time_ns == pytest.approx(
            p.execution_time_s.mean * 1e9, rel=1e-6
        )

    def test_series_projection(self, report):
        series = report.series("execution_time_s")
        assert [g for g, _ in series] == report.grains()
        assert all(v > 0 for _, v in series)

    def test_series_wait_time(self, report):
        series = report.series("wait_per_core_s")
        assert len(series) == 3

    def test_series_unknown_quantity(self, report):
        with pytest.raises(KeyError):
            report.series("nope")

    def test_point_at_missing_grain(self, report):
        with pytest.raises(KeyError):
            report.point_at(12345)

    def test_to_table_renders(self, report):
        table = report.to_table()
        assert "haswell" in table
        assert "idle-rate" in table
        assert "512" in table

    def test_regions_ordered_fine_to_coarse(self, report):
        regions = [p.region for p in report.points]
        # Finest grain must not be 'coarse', coarsest must be 'coarse'.
        assert regions[-1] == "coarse"
        assert regions[0] in ("fine", "medium")

    def test_repetitions_validation(self):
        with pytest.raises(ValueError):
            characterize(RUN_FN, [512], repetitions=0)

    def test_skip_reference_pass(self):
        rep = characterize(
            RUN_FN,
            [4096],
            num_cores=2,
            repetitions=1,
            measure_single_core_reference=False,
        )
        p = rep.points[0]
        assert p.task_duration_1core_ns is None
        assert p.metrics.wait_time_per_task_ns is None

    def test_single_core_reference_on_one_core_run(self):
        rep = characterize(RUN_FN, [4096], num_cores=1, repetitions=1)
        p = rep.points[0]
        # On one core t_d1 == t_d by definition, so wait time is zero.
        assert p.metrics.wait_time_per_task_ns == pytest.approx(0.0, abs=1e-6)
