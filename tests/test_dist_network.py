"""Unit tests for the parcel network model (repro.dist.network)."""

import pytest

from repro.dist.network import (
    LinkParams,
    NetworkModel,
    NetworkParams,
    scaled_network,
)


class TestParams:
    def test_link_defaults_are_commodity_cluster(self):
        link = LinkParams()
        assert link.latency_ns == 15_000
        assert link.bandwidth_bytes_per_ns == 4.0

    def test_link_validation(self):
        with pytest.raises(ValueError):
            LinkParams(latency_ns=-1)
        with pytest.raises(ValueError):
            LinkParams(bandwidth_bytes_per_ns=0.0)

    def test_network_params_validation(self):
        with pytest.raises(ValueError):
            NetworkParams(serialization_base_ns=-1)
        with pytest.raises(ValueError):
            NetworkParams(default_payload_bytes=0)


class TestCostArithmetic:
    def test_wire_bytes_adds_envelope(self):
        model = NetworkModel()
        assert model.wire_bytes(8) == 8 + 512

    def test_serialization_is_base_plus_per_byte(self):
        model = NetworkModel(
            NetworkParams(
                serialization_base_ns=1_000,
                serialization_ns_per_byte=2.0,
                parcel_header_bytes=100,
            )
        )
        assert model.serialization_ns(50) == 1_000 + 2 * 150

    def test_transfer_is_latency_plus_size_over_bandwidth(self):
        model = NetworkModel(
            NetworkParams(
                default_link=LinkParams(
                    latency_ns=10_000, bandwidth_bytes_per_ns=2.0
                ),
                parcel_header_bytes=0,
            )
        )
        assert model.transfer_ns(0, 1, 1_000) == 10_000 + 500

    def test_loopback_is_free(self):
        model = NetworkModel()
        assert model.transfer_ns(3, 3, 1 << 20) == 0

    def test_zero_network_costs_nothing(self):
        model = NetworkModel.zero()
        assert model.serialization_ns(1 << 20) == 0
        assert model.transfer_ns(0, 1, 1 << 20) == 0
        assert model.wire_bytes(64) == 64

    def test_with_link_overrides_one_direction(self):
        slow = LinkParams(latency_ns=1_000_000, bandwidth_bytes_per_ns=0.1)
        model = NetworkModel().with_link(0, 1, slow)
        assert model.link(0, 1) is slow
        # The reverse direction and other pairs keep the default.
        assert model.link(1, 0) == model.params.default_link
        assert model.link(2, 3) == model.params.default_link

    def test_with_link_does_not_mutate_original(self):
        base = NetworkModel()
        base.with_link(0, 1, LinkParams(latency_ns=1))
        assert base.link(0, 1) == base.params.default_link


class TestScaledNetwork:
    def test_scales_latency_serialization_and_inverse_bandwidth(self):
        base = NetworkModel()
        doubled = scaled_network(base, 2.0)
        link = doubled.params.default_link
        assert link.latency_ns == 2 * base.params.default_link.latency_ns
        assert (
            link.bandwidth_bytes_per_ns
            == base.params.default_link.bandwidth_bytes_per_ns / 2
        )
        assert (
            doubled.params.serialization_base_ns
            == 2 * base.params.serialization_base_ns
        )

    def test_factor_zero_is_free(self):
        free = scaled_network(NetworkModel(), 0.0)
        assert free.transfer_ns(0, 1, 1 << 20) == 0
        assert free.serialization_ns(1 << 20) == 0

    def test_scales_overridden_links_too(self):
        base = NetworkModel().with_link(0, 1, LinkParams(latency_ns=100))
        scaled = scaled_network(base, 3.0)
        assert scaled.link(0, 1).latency_ns == 300

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            scaled_network(NetworkModel(), -1.0)
