"""Unit tests for the table formatter and ASCII plotter."""

import pytest

from repro.util.asciiplot import plot_series
from repro.util.tables import format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "bb"], [[1, 2], [33, 44]])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert lines[2].split() == ["1", "2"]
        assert lines[3].split() == ["33", "44"]

    def test_title_first_line(self):
        out = format_table(["x"], [[1]], title="hello")
        assert out.splitlines()[0] == "hello"

    def test_float_rendering(self):
        out = format_table(["v"], [[0.123456]])
        assert "0.1235" in out

    def test_scientific_for_extremes(self):
        out = format_table(["v"], [[123456.0], [0.000001]])
        assert "1.235e+05" in out
        assert "1.000e-06" in out

    def test_zero_renders_as_zero(self):
        assert "0" in format_table(["v"], [[0.0]])

    def test_mismatched_row_raises(self):
        with pytest.raises(ValueError, match="row 0"):
            format_table(["a", "b"], [[1]])

    def test_wide_cells_expand_column(self):
        out = format_table(["x"], [["abcdefghij"]])
        header, sep, row = out.splitlines()
        assert len(header) == len(row) == len(sep)


class TestPlotSeries:
    def test_empty(self):
        assert plot_series({}) == "(no data)"

    def test_contains_markers_and_legend(self):
        out = plot_series({"s1": [(1, 1), (10, 2)], "s2": [(1, 2), (10, 1)]})
        assert "o=s1" in out
        assert "x=s2" in out
        grid = "".join(l for l in out.splitlines() if l.startswith("|"))
        assert "o" in grid and "x" in grid

    def test_title_and_labels(self):
        out = plot_series(
            {"s": [(1, 1), (2, 2)]},
            title="T", xlabel="grain", ylabel="seconds",
        )
        assert out.splitlines()[0] == "T"
        assert "seconds" in out
        assert "grain" in out

    def test_logx_annotation(self):
        out = plot_series({"s": [(10, 1), (1000, 2)]}, logx=True)
        assert "log10" in out

    def test_linear_axis(self):
        out = plot_series({"s": [(0, 1), (5, 2)]}, logx=False)
        assert "log10" not in out

    def test_flat_series_does_not_crash(self):
        out = plot_series({"s": [(1, 5), (2, 5), (3, 5)]})
        assert "(no data)" not in out

    def test_single_point(self):
        out = plot_series({"s": [(1, 1)]})
        assert "o" in out

    def test_grid_dimensions(self):
        out = plot_series({"s": [(1, 1), (100, 10)]}, width=40, height=5)
        grid_lines = [l for l in out.splitlines() if l.startswith("|")]
        assert len(grid_lines) == 5
        assert all(len(l) <= 41 for l in grid_lines)
