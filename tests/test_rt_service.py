"""End-to-end tests for the RT service layer (repro.rt.service).

Two fixture sets: a small lightly-contended set (fast; exercises the
counter surface, conservation, and determinism) and a figE-shaped
saturated set where a LOW critical-section holder is starved behind
steady NORMAL spinners — the configuration where priority inheritance
actually fires, so the requeue-on-boost path is covered end to end.
"""

import pytest

from repro.rt.model import PeriodicTaskSpec, SporadicTaskSpec, TaskSet
from repro.rt.service import (
    RtServiceConfig,
    RtTaskStats,
    default_inversion_threshold_ns,
    run_rt_service,
)


def small_set():
    return TaskSet(
        seed=1,
        tasks=(
            SporadicTaskSpec(
                name="ctrl", wcet_ns=8_000, relative_deadline_ns=12_000,
                min_separation_ns=50_000, resource="bus",
                critical_section_ns=2_000,
            ),
            PeriodicTaskSpec(
                name="spin", wcet_ns=30_000, relative_deadline_ns=120_000,
                period_ns=80_000, exec_variation=0.2,
            ),
            PeriodicTaskSpec(
                name="log", wcet_ns=16_000, relative_deadline_ns=160_000,
                period_ns=160_000, phase_ns=1_000, resource="bus",
                critical_section_ns=8_000,
            ),
        ),
    ).with_grain(2_000)


def contended_set():
    """figE's shape: LOW holder with a long critical section, two
    saturating NORMAL spinners, and a HIGH sporadic waiter on the same
    resource."""
    return TaskSet(
        seed=3,
        tasks=(
            SporadicTaskSpec(
                name="ctrl", wcet_ns=12_000, relative_deadline_ns=48_000,
                min_separation_ns=100_000, resource="bus",
                critical_section_ns=4_000,
            ),
            PeriodicTaskSpec(
                name="spin-a", wcet_ns=104_000, relative_deadline_ns=640_000,
                period_ns=160_000, exec_variation=0.15,
            ),
            PeriodicTaskSpec(
                name="spin-b", wcet_ns=104_000, relative_deadline_ns=640_000,
                period_ns=160_000, exec_variation=0.15,
            ),
            PeriodicTaskSpec(
                name="logger", wcet_ns=40_000, relative_deadline_ns=800_000,
                period_ns=320_000, phase_ns=4_000, resource="bus",
                critical_section_ns=24_000,
            ),
        ),
    ).with_grain(8_000)


def small_config(**overrides):
    base = dict(num_cores=2, window_ns=200_000)
    base.update(overrides)
    return RtServiceConfig(**base)


# -- conservation and totals ------------------------------------------------------


@pytest.mark.parametrize("protocol", ["none", "inherit", "ceiling"])
def test_every_release_is_accounted_under_every_protocol(protocol):
    out = run_rt_service(small_set(), small_config(protocol=protocol))
    assert out.conserved()
    for s in out.stats.values():
        assert s.released == s.on_time + s.missed == s.completed
    assert out.released() == 7
    assert out.missed() == 1
    assert out.miss_rate() == pytest.approx(1 / 7)
    assert len(out.missed_jobs()) == 1


@pytest.mark.parametrize("scheduler", [None, "rm", "rt-edf"])
def test_every_scheduler_axis_conserves(scheduler):
    out = run_rt_service(small_set(), small_config(scheduler=scheduler))
    # the open-loop release schedule does not depend on the scheduler
    assert out.released() == 7
    assert out.conserved()


# -- determinism -------------------------------------------------------------------


def test_rerun_is_bit_identical():
    first = run_rt_service(small_set(), small_config())
    second = run_rt_service(small_set(), small_config())
    assert first.missed_jobs() == second.missed_jobs()
    assert first.result.execution_time_ns == second.result.execution_time_ns
    assert first.result.counters.values == second.result.counters.values
    for index in first.stats:
        assert first.stats[index].lateness_ns == second.stats[index].lateness_ns


def test_contended_rerun_is_bit_identical():
    cfg = RtServiceConfig(num_cores=2, window_ns=800_000, protocol="inherit")
    first = run_rt_service(contended_set(), cfg)
    second = run_rt_service(contended_set(), cfg)
    assert first.missed_jobs() == second.missed_jobs()
    assert first.resources == second.resources


# -- the counter surface -----------------------------------------------------------


def test_counters_mirror_the_programmatic_stats():
    out = run_rt_service(small_set(), small_config(protocol="ceiling"))
    values = out.result.counters.values
    for index, s in out.stats.items():
        prefix = f"/rt{{task#{index}/total}}"
        assert values[f"{prefix}/count/released"] == float(s.released)
        assert values[f"{prefix}/count/on-time"] == float(s.on_time)
        assert values[f"{prefix}/count/missed"] == float(s.missed)
        assert values[f"{prefix}/time/max-lateness@gauge"] == float(
            s.max_lateness_ns()
        )
    agg = "/rt{locality#0/total}"
    res = out.resources
    assert values[f"{agg}/count/blocked"] == float(res.blocked)
    assert values[f"{agg}/count/inversions"] == float(res.inversions)
    assert values[f"{agg}/count/inheritance-boosts"] == float(
        res.inheritance_boosts
    )
    assert values[f"{agg}/time/blocked"] == float(res.blocked_ns)
    assert values[f"{agg}/time/max-blocked@gauge"] == float(res.max_blocked_ns)


# -- resource protocols through the service ---------------------------------------


def test_ceiling_boosts_on_acquire_even_in_the_light_set():
    none = run_rt_service(small_set(), small_config(protocol="none"))
    ceiling = run_rt_service(small_set(), small_config(protocol="ceiling"))
    assert none.resources.inheritance_boosts == 0
    assert ceiling.resources.inheritance_boosts > 0
    # boosting changes who runs when, never how much was released
    assert none.released() == ceiling.released()


def test_inheritance_fires_under_saturation_and_requeues_the_holder():
    def run(protocol):
        return run_rt_service(
            contended_set(),
            RtServiceConfig(
                num_cores=2, window_ns=800_000, protocol=protocol,
                inversion_threshold_ns=48_000,
            ),
        )

    none, inherit = run("none"), run("inherit")
    assert none.resources.inheritance_boosts == 0
    # a HIGH waiter behind the starved LOW holder triggers the boost, and
    # the boost re-queues the holder's staged chunk (requeue_on_boost);
    # the released/blocked totals stay protocol-independent
    assert inherit.resources.inheritance_boosts > 0
    assert inherit.resources.blocked == none.resources.blocked
    assert inherit.conserved() and none.conserved()
    assert inherit.released() == none.released()


# -- config axes -------------------------------------------------------------------


def test_overhead_factor_stretches_the_window():
    base = run_rt_service(small_set(), small_config())
    heavy = run_rt_service(small_set(), small_config(overhead_factor=16.0))
    assert heavy.result.execution_time_ns > base.result.execution_time_ns
    assert heavy.conserved()


def test_stats_for_looks_up_by_name():
    out = run_rt_service(small_set(), small_config())
    assert out.stats_for("ctrl") is out.stats[0]
    assert out.stats_for("log") is out.stats[2]
    with pytest.raises(KeyError):
        out.stats_for("nonesuch")


def test_config_validation():
    with pytest.raises(ValueError):
        RtServiceConfig(num_cores=0)
    with pytest.raises(ValueError):
        RtServiceConfig(window_ns=0)
    with pytest.raises(ValueError):
        RtServiceConfig(protocol="magic")
    with pytest.raises(ValueError):
        RtServiceConfig(overhead_factor=0.0)
    with pytest.raises(ValueError):
        RtServiceConfig(inversion_threshold_ns=-1)


def test_default_inversion_threshold_derives_from_the_set():
    ts = small_set()
    assert default_inversion_threshold_ns(ts) == 3 * 8_000 + 30_000


# -- RtTaskStats unit behavior -----------------------------------------------------


def test_task_stats_ledger():
    s = RtTaskStats()
    s.released = 3
    s.record_completion(0, -5_000)   # early
    s.record_completion(1, 0)        # exactly on time
    s.record_completion(2, 10_000)   # late
    assert (s.on_time, s.missed, s.completed) == (2, 1, 3)
    assert s.missed_jobs == [2]
    assert s.miss_rate() == pytest.approx(1 / 3)
    assert s.max_lateness_ns() == 10_000
    # tardiness clamps earliness at zero before taking the quantile
    assert s.tardiness_p(0.5) == 0.0
    assert s.tardiness_p(1.0) == 10_000.0


def test_empty_stats_are_all_zero():
    s = RtTaskStats()
    assert s.miss_rate() == 0.0
    assert s.tardiness_p(0.99) == 0.0
    assert s.max_lateness_ns() == 0
