"""Unit tests for cost-model calibration, including the round trip."""

import pytest

from repro.apps.stencil1d import stencil_run_fn
from repro.runtime.runtime import RuntimeConfig
from repro.sim.calibrate import (
    ContentionAnchor,
    KernelAnchor,
    ScalingAnchor,
    calibrate,
)
from repro.sim.costmodel import CostModel
from repro.sim.platforms import HASWELL


class TestAnchorValidation:
    def test_kernel_anchor(self):
        with pytest.raises(ValueError):
            KernelAnchor(points=0, duration_ns=100.0)
        with pytest.raises(ValueError):
            KernelAnchor(points=10, duration_ns=0.0)

    def test_scaling_anchor(self):
        with pytest.raises(ValueError):
            ScalingAnchor(cores=1, speedup=1.0)
        with pytest.raises(ValueError):
            ScalingAnchor(cores=8, speedup=9.0)
        with pytest.raises(ValueError):
            ScalingAnchor(cores=8, speedup=0.5)

    def test_contention_anchor(self):
        with pytest.raises(ValueError):
            ContentionAnchor(cores=1, grain_points=100, idle_rate=0.5)
        with pytest.raises(ValueError):
            ContentionAnchor(cores=8, grain_points=100, idle_rate=1.0)


class TestKernelCalibration:
    def test_paper_anchor_reproduces_haswell(self):
        """Calibrating from the paper's own 12,500-point / 21 us anchor must
        land near the shipped Haswell per-point constant."""
        spec = calibrate(
            HASWELL, KernelAnchor(points=12_500, duration_ns=21_000.0)
        )
        assert spec.costs.per_point_ns == pytest.approx(
            HASWELL.costs.per_point_ns, rel=0.35
        )

    def test_anchor_round_trip(self):
        """The calibrated model must reproduce the anchor it was given."""
        anchor = KernelAnchor(points=12_500, duration_ns=21_000.0)
        spec = calibrate(HASWELL, anchor)
        model = CostModel(spec, 1, seed=0)
        measured = model.compute_ns(
            anchor.points, active_cores=1, idle_cores=0, jitter=False
        )
        assert measured == pytest.approx(anchor.duration_ns, rel=0.01)

    def test_other_constants_untouched(self):
        spec = calibrate(HASWELL, KernelAnchor(points=1_000, duration_ns=2_000.0))
        assert spec.costs.task_overhead_ns == HASWELL.costs.task_overhead_ns
        assert (
            spec.costs.mem_bandwidth_bytes_per_ns
            == HASWELL.costs.mem_bandwidth_bytes_per_ns
        )


class TestScalingCalibration:
    def test_bandwidth_solves_inflation(self):
        spec = calibrate(
            HASWELL,
            KernelAnchor(points=12_500, duration_ns=21_000.0),
            ScalingAnchor(cores=28, speedup=4.0),
        )
        model = CostModel(spec, 28, seed=0)
        # inflation at the anchor's core count must equal cores / speedup.
        assert model.bandwidth_inflation(28.0) == pytest.approx(7.0, rel=0.02)

    def test_perfect_scaling_keeps_base_bandwidth(self):
        spec = calibrate(
            HASWELL,
            KernelAnchor(points=12_500, duration_ns=21_000.0),
            ScalingAnchor(cores=4, speedup=4.0),
        )
        assert (
            spec.costs.mem_bandwidth_bytes_per_ns
            == HASWELL.costs.mem_bandwidth_bytes_per_ns
        )

    def test_scaling_round_trip_in_simulation(self):
        """A platform calibrated to 'speedup 4 at 28 cores' must show that
        ceiling when the stencil actually runs on it.

        The anchor formula assumes fully-duty-cycled cores, so the check
        uses a grain where management is negligible against task duration
        (duty > 0.9) while the machine still has plenty of tasks per core.
        """
        spec = calibrate(
            HASWELL,
            KernelAnchor(points=12_500, duration_ns=21_000.0),
            ScalingAnchor(cores=28, speedup=4.0),
        )
        run_fn = stencil_run_fn(1 << 22, time_steps=5)
        grain = 65_536
        t1 = run_fn(RuntimeConfig(platform=spec, num_cores=1, seed=2), grain)
        t28 = run_fn(RuntimeConfig(platform=spec, num_cores=28, seed=2), grain)
        speedup = t1.execution_time_ns / t28.execution_time_ns
        assert speedup == pytest.approx(4.0, rel=0.20)


class TestContentionCalibration:
    def test_idle_rate_round_trip_in_simulation(self):
        anchor = ContentionAnchor(cores=16, grain_points=512, idle_rate=0.85)
        spec = calibrate(
            HASWELL,
            KernelAnchor(points=12_500, duration_ns=21_000.0),
            contention=anchor,
        )
        run_fn = stencil_run_fn(1 << 20, time_steps=3)
        result = run_fn(
            RuntimeConfig(platform=spec, num_cores=16, seed=3),
            anchor.grain_points,
        )
        assert result.idle_rate == pytest.approx(anchor.idle_rate, abs=0.08)

    def test_idle_below_base_overhead_keeps_coefficient(self):
        # An idle-rate that the *uncontended* overhead already exceeds
        # cannot be matched by adding contention; the base value is kept.
        # (512 points -> t_d ~0.6 us; 0.5% idle implies ~3 ns of overhead,
        # far below the ~930 ns base management cost.)
        spec = calibrate(
            HASWELL,
            KernelAnchor(points=12_500, duration_ns=21_000.0),
            contention=ContentionAnchor(
                cores=16, grain_points=512, idle_rate=0.005
            ),
        )
        assert spec.costs.contention_coef == HASWELL.costs.contention_coef
