"""Resilience integration tests: faults x reliable transport x recovery.

Each scenario drives the full distributed stencil (or a minimal two-locality
graph) through the fault injector and asserts the *typed* outcome: completed
runs satisfy the parcel-conservation identity and validate against the
serial reference; failed runs raise ParcelLostError / LocalityCrashError /
WatchdogTimeout naming the cause — never a silent hang.
"""

import numpy as np
import pytest

from repro.apps.stencil1d import initial_condition, serial_reference
from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.dist import (
    CrashAt,
    DistConfig,
    DistRuntime,
    FaultPlan,
    LinkDegradation,
    LocalityCrashError,
    ParcelLostError,
    RetryParams,
    Straggler,
    WatchdogTimeout,
)
from repro.runtime.work import FixedWork

#: the scenario proven end-to-end: 5% drops + 2% duplicates + every 37th
#: parcel doomed, reliable transport, producer re-execution on exhaustion
FAULTED = DistConfig(
    num_localities=4,
    cores_per_locality=4,
    seed=3,
    faults=FaultPlan(seed=7, drop_rate=0.05, duplicate_rate=0.02, doom_every=37),
    retry=RetryParams(max_retries=3),
    recovery="reexecute",
)
STENCIL = DistStencilConfig(
    total_points=1 << 12,
    partition_points=256,
    time_steps=4,
    validate=True,
    decomposition="cyclic",
)


def fault_free_config(**overrides):
    defaults = dict(num_localities=4, cores_per_locality=4, seed=3)
    defaults.update(overrides)
    return DistConfig(**defaults)


class TestConfigValidation:
    def test_unknown_recovery_mode(self):
        with pytest.raises(ValueError):
            fault_free_config(recovery="checkpoint")

    def test_reexecute_requires_reliable_transport(self):
        with pytest.raises(ValueError):
            fault_free_config(recovery="reexecute")

    def test_straggler_locality_in_range(self):
        with pytest.raises(ValueError):
            fault_free_config(
                faults=FaultPlan(stragglers=(Straggler(4, 2.0),))
            )

    def test_crash_locality_in_range(self):
        with pytest.raises(ValueError):
            fault_free_config(faults=FaultPlan(crashes=(CrashAt(9, 100),)))


class TestFaultedStencil:
    def test_completes_conserves_and_validates(self):
        outcome = run_dist_stencil(FAULTED, STENCIL)
        result = outcome.result
        result.assert_parcels_conserved()
        assert result.parcels_dropped > 0
        assert result.parcels_retransmitted > 0
        assert result.duplicates_discarded > 0
        assert result.retry_backoff_ns > 0
        assert result.parcels_recovered > 0
        assert result.recovery_ns > 0
        expected = serial_reference(
            initial_condition(STENCIL.total_points),
            STENCIL.time_steps,
            STENCIL.heat_coefficient,
        )
        np.testing.assert_allclose(outcome.final_array(), expected)

    def test_seed_exact_reproducibility(self):
        first = run_dist_stencil(FAULTED, STENCIL).result
        second = run_dist_stencil(FAULTED, STENCIL).result
        assert first.execution_time_ns == second.execution_time_ns
        assert first.counters == second.counters

    def test_different_fault_seed_changes_the_schedule(self):
        from dataclasses import replace

        other = replace(FAULTED, faults=replace(FAULTED.faults, seed=8))
        first = run_dist_stencil(FAULTED, STENCIL).result
        second = run_dist_stencil(other, STENCIL).result
        assert (
            first.parcels_dropped,
            first.parcels_retransmitted,
            first.duplicates_discarded,
        ) != (
            second.parcels_dropped,
            second.parcels_retransmitted,
            second.duplicates_discarded,
        )

    def test_faults_cost_virtual_time(self):
        clean = run_dist_stencil(fault_free_config(), STENCIL).result
        faulted = run_dist_stencil(FAULTED, STENCIL).result
        assert faulted.execution_time_ns > clean.execution_time_ns


class TestInactivePlanIsFree:
    def test_none_plan_bit_identical_to_no_plan(self):
        stencil = DistStencilConfig(
            total_points=1 << 14, partition_points=1024, time_steps=3
        )
        plain = run_dist_stencil(fault_free_config(), stencil).result
        explicit = run_dist_stencil(
            fault_free_config(faults=FaultPlan.none()), stencil
        ).result
        assert plain.execution_time_ns == explicit.execution_time_ns
        assert plain.counters == explicit.counters
        assert plain.parcels_dropped == 0
        assert plain.parcels_retransmitted == 0
        assert plain.duplicates_discarded == 0
        plain.assert_parcels_conserved()


class TestLossOutcomes:
    """Each way delivery can ultimately fail raises its typed error."""

    def test_unreliable_drop_starves_the_consumer(self):
        # No retry layer: the doomed halo vanishes and the consumer starves.
        config = fault_free_config(faults=FaultPlan(seed=1, doom_every=1))
        with pytest.raises(ParcelLostError, match="lost on link") as info:
            run_dist_stencil(config, STENCIL)
        assert "starved" in str(info.value)

    def test_retry_budget_exhaustion_without_recovery(self):
        config = fault_free_config(
            faults=FaultPlan(seed=1, doom_every=11),
            retry=RetryParams(max_retries=2),
        )
        with pytest.raises(
            ParcelLostError, match="retry budget exhausted"
        ) as info:
            run_dist_stencil(config, STENCIL)
        # The postmortem names the parcel, the link and the attempt count.
        err = info.value
        assert err.attempts == 3  # initial transmission + 2 retries
        assert 0 <= err.source < 4 and 0 <= err.destination < 4

    def test_crash_raises_instead_of_hanging(self):
        clean = run_dist_stencil(fault_free_config(), STENCIL).result
        config = fault_free_config(
            faults=FaultPlan(
                crashes=(CrashAt(2, clean.execution_time_ns // 3),)
            )
        )
        with pytest.raises(LocalityCrashError, match="locality 2"):
            run_dist_stencil(config, STENCIL)

    def test_crash_after_finish_is_harmless(self):
        clean = run_dist_stencil(fault_free_config(), STENCIL).result
        config = fault_free_config(
            faults=FaultPlan(
                crashes=(CrashAt(2, clean.execution_time_ns * 10),)
            )
        )
        # The crash is booked (it did happen) but every future was already
        # satisfied, so wait() returns normally and the data is intact.
        outcome = run_dist_stencil(config, STENCIL)
        assert outcome.result.crashed_localities == (2,)
        np.testing.assert_allclose(
            outcome.final_array(),
            serial_reference(
                initial_condition(STENCIL.total_points),
                STENCIL.time_steps,
                STENCIL.heat_coefficient,
            ),
        )

    def test_watchdog_names_unacked_parcels(self):
        # Doomed parcel + a deep retry budget: at the deadline the sender is
        # still backing off, so the watchdog fires with a diagnosis instead
        # of the run hanging in retransmission limbo.
        config = fault_free_config(
            faults=FaultPlan(seed=1, doom_every=1),
            retry=RetryParams(max_retries=10),
            watchdog_ns=2_000_000,
        )
        with pytest.raises(WatchdogTimeout) as info:
            run_dist_stencil(config, STENCIL)
        assert "awaiting ack" in str(info.value)
        assert info.value.deadline_ns == 2_000_000


class TestProxyExceptionPaths:
    """Error parcels and dead producers surface through proxy futures."""

    def test_error_parcel_feeds_dataflow_dependency(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)

        def boom():
            raise ValueError("producer exploded")

        src = dist.async_(boom, locality=0, work=FixedWork(1_000))
        sink = dist.dataflow(
            lambda x: x + 1, [src], locality=1, work=FixedWork(1_000)
        )
        with pytest.raises(ValueError, match="producer exploded"):
            dist.wait([sink])

    def test_error_parcel_still_ships_under_faults(self):
        # The error itself rides a parcel over the lossy wire; the reliable
        # transport must deliver it so the original exception — not a
        # transport artifact — reaches the consumer.
        dist = DistRuntime(
            num_localities=2,
            cores_per_locality=2,
            seed=0,
            faults=FaultPlan(seed=5, drop_rate=0.4),
            retry=RetryParams(max_retries=6),
        )

        def boom():
            raise ValueError("producer exploded")

        src = dist.async_(boom, locality=0, work=FixedWork(1_000))
        sink = dist.dataflow(
            lambda x: x + 1, [src], locality=1, work=FixedWork(1_000)
        )
        with pytest.raises(ValueError, match="producer exploded"):
            dist.wait([sink])

    def test_wait_on_crashed_producer_raises(self):
        dist = DistRuntime(
            num_localities=2,
            cores_per_locality=2,
            seed=0,
            faults=FaultPlan(crashes=(CrashAt(0, 10_000),)),
        )
        src = dist.async_(lambda: 7, locality=0, work=FixedWork(1_000_000))
        sink = dist.dataflow(
            lambda x: x * x, [src], locality=1, work=FixedWork(1_000)
        )
        with pytest.raises(LocalityCrashError, match="locality 0"):
            dist.wait([sink])


class TestTransportBookkeeping:
    def test_parcel_ids_are_per_runtime(self):
        # Two runtimes in one process must draw ids from independent
        # counters, or fault schedules (keyed on parcel id) would depend on
        # how many runtimes ran before — breaking seed-exact repetition.
        for _ in range(2):
            dist = DistRuntime(
                num_localities=2,
                cores_per_locality=1,
                seed=0,
                faults=FaultPlan(seed=1, doom_every=1),
            )
            src = dist.async_(lambda: 1, locality=0, work=FixedWork(1_000))
            dist.dataflow(
                lambda x: x, [src], locality=1, work=FixedWork(1_000)
            )
            dist.run()
            dead = dist.locality(0).parcelport.dead_letters
            assert [p.parcel_id for p in dead] == [1]

    def test_duplicates_are_discarded_exactly_once_delivered(self):
        dist_config = fault_free_config(
            faults=FaultPlan(seed=2, duplicate_rate=0.5),
            retry=RetryParams(),
        )
        result = run_dist_stencil(dist_config, STENCIL).result
        result.assert_parcels_conserved()
        assert result.duplicates_discarded > 0
        # Every logical parcel was delivered exactly once despite the noise.
        assert result.parcels_received == result.parcels_sent
        assert result.parcels_dropped == 0

    def test_straggler_slows_the_run(self):
        clean = run_dist_stencil(fault_free_config(), STENCIL).result
        slowed = run_dist_stencil(
            fault_free_config(
                faults=FaultPlan(stragglers=(Straggler(1, 4.0),))
            ),
            STENCIL,
        ).result
        assert slowed.execution_time_ns > clean.execution_time_ns
        np.testing.assert_allclose(
            serial_reference(
                initial_condition(STENCIL.total_points),
                STENCIL.time_steps,
                STENCIL.heat_coefficient,
            ),
            run_dist_stencil(
                fault_free_config(
                    faults=FaultPlan(stragglers=(Straggler(1, 4.0),))
                ),
                STENCIL,
            ).final_array(),
        )

    def test_degraded_link_window_raises_network_wait(self):
        clean = run_dist_stencil(fault_free_config(), STENCIL).result
        degraded = run_dist_stencil(
            fault_free_config(
                faults=FaultPlan(
                    degradations=(
                        LinkDegradation(
                            0,
                            clean.execution_time_ns * 10,
                            latency_factor=8.0,
                            bandwidth_factor=0.25,
                        ),
                    )
                )
            ),
            STENCIL,
        ).result
        assert degraded.network_wait_ns > clean.network_wait_ns
        assert degraded.execution_time_ns > clean.execution_time_ns
