"""Test-suite configuration.

Registers the ``slow`` marker used on the long-running convergence and
experiment-harness tests, so a quick development loop can run::

    pytest tests/ -m "not slow"

and CI / the full verification run includes everything (the default).
"""

import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers", "slow: long-running convergence/experiment tests"
    )
