"""Graph analysis: cycles, orphans, shape stats, and the two builders."""

import pytest

from repro import Future, Runtime, RuntimeConfig, when_all
from repro.analysis import (
    CycleError,
    TaskGraph,
    graph_from_futures,
    graph_from_trace,
    trace_task_weights,
)
from repro.runtime.work import FixedWork


def diamond() -> TaskGraph:
    """1 -> {2, 3} -> 4."""
    g = TaskGraph()
    g.add_edge(1, 2)
    g.add_edge(1, 3)
    g.add_edge(2, 4)
    g.add_edge(3, 4)
    return g


# -- cycles -----------------------------------------------------------------------


def test_acyclic_graph_has_no_cycles():
    assert diamond().find_cycles() == []


def test_simple_cycle_detected():
    g = diamond()
    g.add_edge(4, 1)  # close the diamond
    cycles = g.find_cycles()
    assert len(cycles) == 1
    assert sorted(cycles[0]) == [1, 2, 3, 4]


def test_self_loop_detected():
    g = TaskGraph()
    g.add_node(7, "selfie")
    g.add_edge(7, 7)
    assert g.find_cycles() == [[7]]


def test_two_disjoint_cycles():
    g = TaskGraph()
    g.add_edge(1, 2)
    g.add_edge(2, 1)
    g.add_edge(3, 4)
    g.add_edge(4, 3)
    assert len(g.find_cycles()) == 2


def test_deep_chain_does_not_overflow():
    g = TaskGraph()
    for i in range(10_000):
        g.add_edge(i, i + 1)
    assert g.find_cycles() == []
    assert g.stats().depth == 10_001


# -- orphans ----------------------------------------------------------------------


def test_orphans_relative_to_outputs():
    g = diamond()
    g.add_edge(5, 6)  # a side computation nothing requested
    orphaned = g.orphans(outputs=[4])
    assert orphaned == [5, 6]


def test_no_orphans_when_everything_feeds_output():
    assert diamond().orphans(outputs=[4]) == []


def test_isolated_nodes_without_outputs():
    g = diamond()
    g.add_node(9, "island")
    assert g.orphans() == [9]


def test_findings_name_cycles_and_orphans():
    g = TaskGraph()
    g.add_node(1, "a")
    g.add_node(2, "b")
    g.add_edge(1, 2)
    g.add_edge(2, 1)
    g.add_node(3, "island")
    findings = g.findings()
    rules = sorted(f.rule_id for f in findings)
    assert rules == ["GA201", "GA202"]
    cycle_msg = next(f for f in findings if f.rule_id == "GA201").message
    assert "a" in cycle_msg and "b" in cycle_msg


# -- shape stats ------------------------------------------------------------------


def test_diamond_stats():
    stats = diamond().stats()
    assert stats.num_nodes == 4
    assert stats.num_edges == 4
    assert stats.depth == 3
    assert stats.max_width == 2
    assert stats.avg_width == pytest.approx(4 / 3)
    # Unweighted critical path: 3 nodes through either middle node.
    assert stats.critical_path_weight == 3.0
    assert stats.critical_path[0] == 1 and stats.critical_path[-1] == 4


def test_weighted_critical_path_picks_heavy_branch():
    g = diamond()
    weight, path = g.critical_path({1: 1.0, 2: 100.0, 3: 1.0, 4: 1.0})
    assert weight == 102.0
    assert path == [1, 2, 4]


def test_stats_on_cyclic_graph_raises():
    g = diamond()
    g.add_edge(4, 1)
    with pytest.raises(CycleError):
        g.stats()


def test_empty_graph_stats():
    stats = TaskGraph().stats()
    assert stats.num_nodes == 0 and stats.depth == 0


# -- graph_from_futures ------------------------------------------------------------


def test_graph_from_futures_follows_composition():
    rt = Runtime(num_cores=2)
    parts = [rt.async_(lambda i=i: i, name=f"p{i}") for i in range(3)]
    total = rt.dataflow(lambda *xs: sum(xs), parts, name="total")
    rt.run()
    g = graph_from_futures([total])
    assert g.num_nodes == 4
    assert g.num_edges == 3
    assert g.predecessors(total.future_id) == {p.future_id for p in parts}
    assert g.name_of(total.future_id) == "total"


def test_graph_from_futures_when_all_edges():
    a, b = Future("a"), Future("b")
    combined = when_all([a, b], name="combined")
    g = graph_from_futures([combined])
    assert g.num_edges == 2
    assert g.find_cycles() == []


def test_graph_from_futures_survives_injected_cycle():
    a, b = Future("a"), Future("b")
    a.dependencies = (b,)
    b.dependencies = (a,)
    g = graph_from_futures([a])
    cycles = g.find_cycles()
    assert len(cycles) == 1
    assert {g.name_of(n) for n in cycles[0]} == {"a", "b"}


# -- graph_from_trace ---------------------------------------------------------------


def _traced_forkjoin():
    rt = Runtime(RuntimeConfig(num_cores=2, trace=True))

    def root():
        left = rt.async_(lambda: 1, work=FixedWork(2_000), name="left")
        right = rt.async_(lambda: 2, work=FixedWork(9_000), name="right")
        rt.dataflow(lambda a, b: a + b, [left, right], name="join")

    rt.async_(root, work=FixedWork(1_000), name="root")
    rt.run()
    return rt.trace


def test_graph_from_trace_spawn_parentage():
    trace = _traced_forkjoin()
    g = graph_from_trace(trace)
    # root spawns left/right; the dataflow join is spawned from whichever
    # dependency completed last — every task has a recorded parent but root.
    assert g.num_nodes == 4
    roots = [n for n in g.nodes() if not g.predecessors(n)]
    assert len(roots) == 1
    assert g.name_of(roots[0]) == "root"
    assert g.find_cycles() == []


def test_trace_weights_feed_critical_path():
    trace = _traced_forkjoin()
    g = graph_from_trace(trace)
    weights = trace_task_weights(trace)
    assert len(weights) == 4
    weight, path = g.critical_path(weights)
    names = [g.name_of(n) for n in path]
    assert names[0] == "root"
    # The heavy branch (right, 9us) dominates the light one.
    assert "right" in names
    assert weight >= 9_000
