"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import GranularityMetrics, MetricInputs
from repro.counters.names import CounterName, parse_counter_name
from repro.counters.registry import CounterRegistry
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Task
from repro.runtime.work import FixedWork
from repro.sim.engine import Simulator
from repro.util.stats import SampleStats, cov, mean, stddev

# -- statistics ---------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


@given(st.lists(finite_floats, min_size=1, max_size=50))
def test_mean_bounded_by_extremes(xs):
    m = mean(xs)
    assert min(xs) - 1e-6 <= m <= max(xs) + 1e-6


@given(st.lists(finite_floats, min_size=1, max_size=50))
def test_stddev_nonnegative(xs):
    assert stddev(xs) >= 0.0


@given(st.lists(finite_floats, min_size=1, max_size=50), finite_floats)
def test_mean_shift_equivariance(xs, shift):
    shifted = [x + shift for x in xs]
    assert math.isclose(
        mean(shifted), mean(xs) + shift, rel_tol=1e-6, abs_tol=1e-3
    )


@given(st.lists(finite_floats, min_size=2, max_size=50), finite_floats)
def test_stddev_shift_invariance(xs, shift):
    assert math.isclose(
        stddev([x + shift for x in xs]), stddev(xs), rel_tol=1e-4, abs_tol=1e-2
    )


@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=30))
def test_sample_stats_consistency(xs):
    s = SampleStats.from_samples(xs)
    # One ulp of slack: fsum-based means of identical values can exceed the
    # max by the last bit.
    slack = 1e-12 * max(abs(s.minimum), abs(s.maximum), 1.0)
    assert s.minimum - slack <= s.mean <= s.maximum + slack
    assert s.n == len(xs)
    if s.mean:
        assert math.isclose(s.cov, s.stddev / abs(s.mean), rel_tol=1e-9)


@given(st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=1, max_size=20))
def test_mean_is_within_one_stddev_of_itself(xs):
    s = SampleStats.from_samples(xs)
    assert s.within_stddev(s.mean)


# -- counter names ---------------------------------------------------------------------

name_component = st.from_regex(r"[a-z][a-z0-9-]{0,10}", fullmatch=True)


@given(
    obj=name_component,
    counter=st.lists(name_component, min_size=1, max_size=3).map("/".join),
    instance_index=st.integers(min_value=0, max_value=999) | st.none(),
)
def test_counter_name_canonical_round_trip(obj, counter, instance_index):
    name = CounterName(
        object_name=obj,
        counter_path=counter,
        instance="worker-thread" if instance_index is not None else "total",
        instance_index=instance_index,
    )
    assert parse_counter_name(name.canonical()) == name


@given(st.integers(min_value=0, max_value=50))
def test_registry_wildcard_query_finds_all_instances(n):
    reg = CounterRegistry()
    for i in range(n):
        reg.raw(f"/threads{{locality#0/worker-thread#{i}}}/count/cumulative")
    found = list(
        reg.query("/threads{locality#0/worker-thread#*}/count/cumulative")
    )
    assert len(found) == n


# -- engine ---------------------------------------------------------------------------


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=100))
def test_engine_fires_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired: list[int] = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert sim.now == max(delays)


@given(
    st.lists(st.integers(min_value=0, max_value=1_000), min_size=2, max_size=40),
    st.data(),
)
def test_engine_cancellation_preserves_other_events(delays, data):
    sim = Simulator()
    fired: list[int] = []
    events = [
        sim.schedule(d, lambda i=i: fired.append(i)) for i, d in enumerate(delays)
    ]
    victim = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
    events[victim].cancel()
    sim.run()
    assert victim not in fired
    assert len(fired) == len(delays) - 1


# -- metric identities -------------------------------------------------------------------


@given(
    exec_ns=st.floats(min_value=0, max_value=1e12),
    overhead_ns=st.floats(min_value=0, max_value=1e12),
    nt=st.integers(min_value=1, max_value=10_000_000),
    nc=st.integers(min_value=1, max_value=256),
)
def test_metric_identities(exec_ns, overhead_ns, nt, nc):
    func_ns = exec_ns + overhead_ns
    m = GranularityMetrics.compute(
        MetricInputs(
            execution_time_ns=func_ns / nc if nc else 0.0,
            cumulative_exec_ns=exec_ns,
            cumulative_func_ns=func_ns,
            tasks_executed=nt,
            num_cores=nc,
        )
    )
    assert 0.0 <= m.idle_rate <= 1.0
    # Eq. 2 + Eq. 3 recombine to the totals.  The (func - exec) subtraction
    # cancels catastrophically when overhead_ns << exec_ns, so the absolute
    # tolerance scales with the magnitudes involved.
    cancel = 1e-9 * max(1.0, exec_ns + overhead_ns)
    assert math.isclose(
        m.task_duration_ns * nt, exec_ns, rel_tol=1e-9, abs_tol=cancel
    )
    assert math.isclose(
        m.task_overhead_ns * nt, overhead_ns, rel_tol=1e-9, abs_tol=cancel
    )
    # Eq. 4 is Eq. 3 rescaled.
    assert math.isclose(
        m.thread_management_per_core_ns * nc,
        overhead_ns,
        rel_tol=1e-9,
        abs_tol=cancel,
    )


@given(
    td1=st.floats(min_value=1.0, max_value=1e9),
    td=st.floats(min_value=1.0, max_value=1e9),
)
def test_wait_time_sign_follows_duration_difference(td1, td):
    m = GranularityMetrics.compute(
        MetricInputs(
            execution_time_ns=1e9,
            cumulative_exec_ns=td * 10,
            cumulative_func_ns=td * 10 + 1.0,
            tasks_executed=10,
            num_cores=2,
            task_duration_1core_ns=td1,
        )
    )
    assert m.wait_time_per_task_ns is not None
    if td > td1:
        assert m.wait_time_per_task_ns > 0
    elif td < td1:
        assert m.wait_time_per_task_ns < 0


# -- executor conservation laws ------------------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    n_tasks=st.integers(min_value=1, max_value=60),
    cores=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_executor_conservation(n_tasks, cores, seed):
    """No task is lost or duplicated, regardless of population and topology;
    time accounting balances exactly."""
    rt = Runtime(RuntimeConfig(platform="haswell", num_cores=cores, seed=seed))
    tasks = [Task(lambda: None, work=FixedWork(1_000)) for _ in range(n_tasks)]
    for i, t in enumerate(tasks):
        rt.spawn(t, worker=i % cores)
    result = rt.run()
    assert result.tasks_executed == n_tasks
    assert result.counters.get("/threads/count/cumulative") == n_tasks
    assert sum(w.tasks_executed for w in rt.executor.workers) == n_tasks
    # Conservation: per-worker exec sums to the cumulative counter.
    assert sum(w.exec_ns for w in rt.executor.workers) == int(
        result.cumulative_exec_ns
    )
    # Func time (workers x makespan) bounds exec time.
    assert result.cumulative_func_ns >= result.cumulative_exec_ns


@settings(max_examples=15, deadline=None)
@given(
    total=st.integers(min_value=256, max_value=4096),
    partition=st.integers(min_value=16, max_value=512),
    steps=st.integers(min_value=1, max_value=4),
    cores=st.integers(min_value=1, max_value=6),
)
def test_stencil_task_count_invariant(total, partition, steps, cores):
    """ceil(total/partition) * steps tasks execute, for any geometry."""
    from repro.apps.stencil1d import StencilConfig, run_stencil

    partition = min(partition, total)
    cfg = StencilConfig(
        total_points=total, partition_points=partition, time_steps=steps
    )
    out = run_stencil(RuntimeConfig(num_cores=cores, seed=1), cfg)
    assert out.result.tasks_executed == cfg.total_tasks


@settings(max_examples=10, deadline=None)
@given(
    total=st.integers(min_value=64, max_value=512),
    steps=st.integers(min_value=1, max_value=6),
)
def test_stencil_numerics_property(total, steps):
    """The futurized run equals the serial reference for arbitrary sizes."""
    import numpy as np

    from repro.apps.stencil1d import (
        StencilConfig,
        initial_condition,
        run_stencil,
        serial_reference,
    )

    partition = max(1, total // 7)
    cfg = StencilConfig(
        total_points=total,
        partition_points=partition,
        time_steps=steps,
        validate=True,
    )
    out = run_stencil(RuntimeConfig(num_cores=3, seed=0), cfg)
    ref = serial_reference(initial_condition(total), steps, 0.25)
    np.testing.assert_allclose(out.final_array(), ref, rtol=1e-10)
