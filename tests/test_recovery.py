"""Crash-recovery tests: heartbeat detection, checkpoint/restart, lineage
re-execution, and the disabled-recovery legacy behavior.

The workload is the figC ring of dependency chains — every locality's step
consumes its own and its right neighbour's previous step — so a crash
always kills work the survivors still need.  Every surviving run must
finish with values bit-identical to the crash-free serial reference.
"""

import pytest

from repro.dist import (
    CrashAt,
    DistConfig,
    DistRuntime,
    FaultPlan,
    LinkDegradation,
    LocalityCrashError,
    ParcelLostError,
    RecoveryConfig,
    RetryParams,
    Straggler,
    UnrecoverableCrashError,
    WatchdogTimeout,
)
from repro.runtime.work import FixedWork

N = 4
STEPS = 8
GRAIN = 120_000
RECOVERY = RecoveryConfig(checkpoint_interval_ns=200_000)


def base_config(**overrides):
    defaults = dict(
        num_localities=N, cores_per_locality=2, seed=7, retry=RetryParams()
    )
    defaults.update(overrides)
    return DistConfig(**defaults)


def build_ring(runtime: DistRuntime):
    prev = [
        runtime.make_ready_future(float(i), locality=i, name=f"root{i}")
        for i in range(N)
    ]
    for t in range(STEPS):
        prev = [
            runtime.dataflow(
                (lambda a, b, t=t, i=i: a * 0.5 + b * 0.25 + t + i * 0.125),
                [prev[i], prev[(i + 1) % N]],
                locality=i,
                work=FixedWork(GRAIN),
                name=f"s{t}l{i}",
            )
            for i in range(N)
        ]
    return prev


def run_ring(config: DistConfig):
    runtime = DistRuntime(config)
    finals = build_ring(runtime)
    result = runtime.wait(finals)
    return result, [f.value for f in finals]


def ring_reference():
    vals = [float(i) for i in range(N)]
    for t in range(STEPS):
        vals = [
            vals[i] * 0.5 + vals[(i + 1) % N] * 0.25 + t + i * 0.125
            for i in range(N)
        ]
    return vals


@pytest.fixture(scope="module")
def clean():
    result, values = run_ring(base_config())
    assert values == ring_reference()
    return result


def crash_config(crash_ns, locality=N - 1, recovery=RECOVERY, **overrides):
    return base_config(
        faults=FaultPlan(seed=7, crashes=(CrashAt(locality, crash_ns),)),
        crash_recovery=recovery,
        **overrides,
    )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "field, bad",
        [
            ("heartbeat_interval_ns", 0),
            ("heartbeat_jitter_ns", -1),
            ("heartbeat_bytes", 0),
            ("suspicion_after", 0.5),
            ("checkpoint_interval_ns", 0),
            ("checkpoint_base_ns", 0),
            ("checkpoint_entry_bytes", 0),
            ("max_crashes", 0),
        ],
    )
    def test_rejects_bad_knob(self, field, bad):
        with pytest.raises(ValueError, match=field):
            RecoveryConfig(**{field: bad})

    def test_recovery_needs_multiple_localities(self):
        with pytest.raises(ValueError, match="at least 2 localities"):
            DistConfig(num_localities=1, crash_recovery=RECOVERY)

    def test_default_is_disabled(self):
        assert base_config().crash_recovery is None


class TestCrashSurvival:
    def test_completes_with_reference_values(self, clean):
        result, values = run_ring(
            crash_config(clean.execution_time_ns // 2)
        )
        assert values == ring_reference()
        assert result.crashes_detected == 1
        assert result.crashed_localities == (N - 1,)

    def test_conservation_and_decomposition(self, clean):
        result, _ = run_ring(crash_config(clean.execution_time_ns // 2))
        result.assert_parcels_conserved()
        assert result.tasks_lost > 0
        assert result.tasks_reexecuted == result.tasks_lost
        assert result.tasks_restored <= result.tasks_checkpointed
        assert (
            result.detection_ns + result.restore_ns + result.reexecution_ns
            == result.recovery_total_ns
        )
        assert 0 < result.recovery_total_ns < result.execution_time_ns
        # The dead link stopped burning retransmission budget.
        assert result.parcels_failed_fast > 0

    def test_app_task_count_matches_crash_free(self, clean):
        enabled = base_config(crash_recovery=RECOVERY)
        crash_free, _ = run_ring(enabled)
        crashed, _ = run_ring(crash_config(clean.execution_time_ns // 2))
        assert crash_free.crashes_detected == 0
        assert (
            crashed.app_tasks_completed == crash_free.app_tasks_completed
        )

    def test_recovery_counters_exported(self, clean):
        result, _ = run_ring(crash_config(clean.execution_time_ns // 2))
        assert result.heartbeats_sent > 0
        assert result.checkpoints_taken > 0
        snapshot = result.counters
        hb = sum(
            snapshot.get(
                f"/recovery{{locality#{i}/total}}/count/heartbeats-sent"
            )
            for i in range(N)
        )
        assert hb == result.heartbeats_sent
        reexec = sum(
            snapshot.get(
                f"/recovery{{locality#{i}/total}}/count/reexecuted"
            )
            for i in range(N)
        )
        assert reexec == result.tasks_reexecuted

    def test_seed_exact_reproducibility(self, clean):
        config = crash_config(clean.execution_time_ns // 2)
        first, v1 = run_ring(config)
        second, v2 = run_ring(config)
        assert v1 == v2
        assert first.execution_time_ns == second.execution_time_ns
        assert first.counters == second.counters

    def test_crash_of_locality_zero(self, clean):
        result, values = run_ring(
            crash_config(clean.execution_time_ns // 2, locality=0)
        )
        assert values == ring_reference()
        assert result.crashed_localities == (0,)
        result.assert_parcels_conserved()

    def test_crash_during_checkpoint_write(self, clean):
        # Die exactly in the middle of the first checkpoint write: entries
        # chosen but not yet replicated are NOT restorable — they must be
        # re-executed, and the answer must still be exact.
        crash_ns = (
            RECOVERY.checkpoint_interval_ns + RECOVERY.checkpoint_base_ns // 2
        )
        result, values = run_ring(crash_config(crash_ns))
        assert values == ring_reference()
        assert result.tasks_reexecuted == result.tasks_lost
        result.assert_parcels_conserved()

    def test_early_crash_restores_only_roots(self):
        # Crash before the first checkpoint tick: nothing but the (free)
        # root placements is durable, so everything completed is lost.
        result, values = run_ring(crash_config(50_000))
        assert values == ring_reference()
        assert result.tasks_restored <= 1  # at most the locality's root
        result.assert_parcels_conserved()


class TestCrashBudget:
    def test_second_crash_exhausts_default_budget(self, clean):
        config = base_config(
            faults=FaultPlan(
                seed=7,
                crashes=(
                    CrashAt(1, clean.execution_time_ns // 3),
                    CrashAt(3, 2 * clean.execution_time_ns // 3),
                ),
            ),
            crash_recovery=RECOVERY,
        )
        with pytest.raises(
            UnrecoverableCrashError, match="budget exhausted"
        ) as info:
            run_ring(config)
        assert info.value.localities == (1, 3)

    def test_two_crashes_survive_with_budget_two(self, clean):
        config = base_config(
            faults=FaultPlan(
                seed=7,
                crashes=(
                    CrashAt(1, clean.execution_time_ns // 3),
                    CrashAt(3, 2 * clean.execution_time_ns // 3),
                ),
            ),
            crash_recovery=RecoveryConfig(
                checkpoint_interval_ns=200_000, max_crashes=2
            ),
        )
        result, values = run_ring(config)
        assert values == ring_reference()
        assert result.crashes_detected == 2
        assert result.tasks_reexecuted == result.tasks_lost
        result.assert_parcels_conserved()


class TestDetectorRobustness:
    """Slow is not dead: degraded links and stragglers must not trip the
    failure detector."""

    def test_straggler_is_not_declared_dead(self):
        result, values = run_ring(
            base_config(
                faults=FaultPlan(seed=7, stragglers=(Straggler(2, 4.0),)),
                crash_recovery=RECOVERY,
            )
        )
        assert result.crashes_detected == 0
        assert values == ring_reference()

    def test_degraded_link_is_not_declared_dead(self):
        result, values = run_ring(
            base_config(
                faults=FaultPlan(
                    seed=7,
                    degradations=(
                        LinkDegradation(
                            0,
                            1 << 40,
                            latency_factor=8.0,
                            bandwidth_factor=0.25,
                        ),
                    ),
                ),
                crash_recovery=RECOVERY,
            )
        )
        assert result.crashes_detected == 0
        assert values == ring_reference()

    def test_straggler_beside_a_real_crash(self, clean):
        # The detector must single out the crashed locality even while a
        # straggler is legitimately slow.
        config = base_config(
            faults=FaultPlan(
                seed=7,
                stragglers=(Straggler(1, 3.0),),
                crashes=(CrashAt(3, clean.execution_time_ns // 2),),
            ),
            crash_recovery=RECOVERY,
        )
        result, values = run_ring(config)
        assert result.crashes_detected == 1
        assert result.crashed_localities == (3,)
        assert values == ring_reference()


class TestDiagnosis:
    def test_watchdog_names_the_recovery_in_progress(self, clean):
        crash_ns = clean.execution_time_ns // 2
        config = crash_config(
            crash_ns, watchdog_ns=crash_ns + 500_000
        )
        with pytest.raises(WatchdogTimeout) as info:
            run_ring(config)
        message = str(info.value)
        assert f"recovery of locality {N - 1} in progress" in message
        assert "replacement task(s) still pending" in message
        assert "detector" in message

    def test_disabled_crash_keeps_the_legacy_terminal_path(self, clean):
        config = base_config(
            faults=FaultPlan(
                seed=7, crashes=(CrashAt(3, clean.execution_time_ns // 2),)
            )
        )
        with pytest.raises(
            (LocalityCrashError, ParcelLostError),
            match="no recovery possible",
        ):
            run_ring(config)

    def test_disabled_run_exports_no_recovery_counters(self, clean):
        # The /recovery{locality#N/total} family must not exist (the
        # pre-existing /parcels .../time/recovery counter is unrelated).
        assert not any(
            name.startswith("/recovery{") for name in clean.counters.values
        )
        assert clean.heartbeats_sent == 0
        assert clean.checkpoints_taken == 0
        assert clean.recovery_total_ns == 0


class TestAgasRehoming:
    def test_declared_locality_owns_no_addresses(self, clean):
        runtime = DistRuntime(crash_config(clean.execution_time_ns // 2))
        finals = build_ring(runtime)
        runtime.wait(finals)
        assert runtime.agas.homed_on(N - 1) == []

    def test_rehome_unknown_gid_raises(self):
        runtime = DistRuntime(base_config())
        with pytest.raises(KeyError):
            runtime.agas.rehome(99_999_999, 0)

    def test_rehome_moves_the_address(self):
        runtime = DistRuntime(base_config())
        gid = runtime.register_gid(2, name="x")
        assert gid.gid in runtime.agas.homed_on(2)
        runtime.agas.rehome(gid.gid, 0)
        assert gid.gid in runtime.agas.homed_on(0)
        assert gid.gid not in runtime.agas.homed_on(2)
