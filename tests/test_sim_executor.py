"""Unit tests for the simulated executor: execution, accounting, counters,
suspension, stealing, termination, and determinism."""

import pytest

from repro.counters.registry import CounterRegistry
from repro.runtime.future import Future
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.sim_executor import DeadlockError, SimExecutor
from repro.runtime.task import Priority, Task, TaskState
from repro.runtime.work import FixedWork, NoWork, StencilWork
from repro.schedulers.priority_local import PriorityLocalScheduler
from repro.sim.costmodel import CostModel
from repro.sim.machine import Machine
from repro.sim.platforms import HASWELL


def make_executor(cores=2, seed=0):
    machine = Machine(HASWELL, cores)
    return SimExecutor(
        machine,
        PriorityLocalScheduler(),
        CostModel(HASWELL, cores, seed=seed),
        CounterRegistry(),
    )


class TestBasicExecution:
    def test_single_task_runs_and_terminates(self):
        ex = make_executor()
        done = []
        t = Task(lambda: done.append(1), work=FixedWork(1_000))
        ex.spawn(t)
        finish = ex.run()
        assert done == [1]
        assert t.state is TaskState.TERMINATED
        assert finish > 1_000  # work plus management

    def test_empty_run_finishes_at_zero(self):
        ex = make_executor()
        assert ex.run() == 0

    def test_many_tasks_all_execute_exactly_once(self):
        ex = make_executor(cores=4)
        count = [0]
        tasks = [
            Task(lambda: count.__setitem__(0, count[0] + 1), work=FixedWork(100))
            for _ in range(500)
        ]
        for t in tasks:
            ex.spawn(t)
        ex.run()
        assert count[0] == 500
        assert all(t.state is TaskState.TERMINATED for t in tasks)
        assert ex.outstanding_tasks == 0

    def test_task_spawned_during_run(self):
        ex = make_executor()
        order = []

        def parent():
            order.append("parent")
            ex.spawn(Task(lambda: order.append("child"), work=FixedWork(10)))

        ex.spawn(Task(parent, work=FixedWork(10)))
        ex.run()
        assert order == ["parent", "child"]

    def test_parallelism_shortens_makespan(self):
        def run_with(cores):
            ex = make_executor(cores=cores)
            for _ in range(64):
                ex.spawn(Task(lambda: None, work=FixedWork(100_000)))
            return ex.run()

        assert run_with(8) < run_with(1) / 4

    def test_fn_none_task_is_noop(self):
        ex = make_executor()
        t = Task(None, work=NoWork())
        ex.spawn(t)
        ex.run()
        assert t.state is TaskState.TERMINATED


class TestAccounting:
    def test_exec_and_overhead_recorded(self):
        ex = make_executor(cores=1)
        t = Task(lambda: None, work=FixedWork(5_000))
        ex.spawn(t)
        ex.run()
        assert t.exec_ns > 0
        assert t.overhead_ns > 0
        assert t.phases == 1

    def test_counters_after_run(self):
        ex = make_executor(cores=2)
        for _ in range(10):
            ex.spawn(Task(lambda: None, work=FixedWork(1_000)))
        finish = ex.run()
        reg = ex.registry
        assert reg.get("/threads/count/cumulative").get_value() == 10
        assert reg.get("/threads/count/cumulative-phases").get_value() == 10
        exec_total = reg.get("/threads/time/cumulative").get_value()
        func_total = reg.get("/threads/time/cumulative-func").get_value()
        assert 0 < exec_total <= func_total
        assert func_total == pytest.approx(2 * finish)

    def test_idle_rate_between_zero_and_one(self):
        ex = make_executor(cores=2)
        for _ in range(10):
            ex.spawn(Task(lambda: None, work=FixedWork(1_000)))
        ex.run()
        idle = ex.registry.get("/threads/idle-rate").get_value()
        assert 0.0 <= idle <= 1.0

    def test_average_counters_match_totals(self):
        ex = make_executor(cores=1)
        tasks = [Task(lambda: None, work=FixedWork(2_000)) for _ in range(7)]
        for t in tasks:
            ex.spawn(t)
        ex.run()
        avg = ex.registry.get("/threads/time/average").get_value()
        expected = sum(t.exec_ns for t in tasks) / 7
        assert avg == pytest.approx(expected)

    def test_worker_accounting_conserved(self):
        ex = make_executor(cores=3)
        tasks = [Task(lambda: None, work=FixedWork(1_500)) for _ in range(30)]
        for t in tasks:
            ex.spawn(t)
        ex.run()
        assert sum(w.tasks_executed for w in ex.workers) == 30
        assert sum(w.exec_ns for w in ex.workers) == sum(t.exec_ns for t in tasks)

    def test_per_worker_counters_registered(self):
        ex = make_executor(cores=2)
        found = list(
            ex.registry.query(
                "/threads{locality#0/worker-thread#*}/count/cumulative"
            )
        )
        assert len(found) == 2


class TestQueueCounters:
    def test_pending_accesses_counted(self):
        ex = make_executor(cores=2)
        for _ in range(5):
            ex.spawn(Task(lambda: None, work=FixedWork(500)))
        ex.run()
        accesses = ex.registry.get("/threads/count/pending-accesses").get_value()
        misses = ex.registry.get("/threads/count/pending-misses").get_value()
        assert accesses > 0
        assert 0 <= misses <= accesses

    def test_steal_counter(self):
        # All work staged on worker 0; worker 1 must steal some of it.
        ex = make_executor(cores=2)
        for _ in range(50):
            ex.spawn(Task(lambda: None, work=FixedWork(100_000)), worker=0)
        ex.run()
        assert ex.registry.get("/threads/count/stolen").get_value() > 0


class TestPriorities:
    def test_high_priority_runs_before_backlog(self):
        ex = make_executor(cores=1)
        order = []
        for i in range(5):
            ex.spawn(Task(lambda i=i: order.append(f"n{i}"), work=FixedWork(100)))
        ex.spawn(
            Task(lambda: order.append("hi"), work=FixedWork(100),
                 priority=Priority.HIGH)
        )
        ex.run()
        # The high-priority task overtakes the queued normal backlog.
        assert order.index("hi") < 4

    def test_low_priority_runs_last(self):
        ex = make_executor(cores=1)
        order = []
        ex.spawn(
            Task(lambda: order.append("lo"), work=FixedWork(100),
                 priority=Priority.LOW)
        )
        for i in range(3):
            ex.spawn(Task(lambda i=i: order.append(i), work=FixedWork(100)))
        ex.run()
        assert order[-1] == "lo"


class TestSuspension:
    def test_generator_task_suspends_and_resumes(self):
        ex = make_executor(cores=1)
        gate = Future("gate")
        history = []

        def suspender():
            history.append("phase1")
            yield gate
            history.append("phase2")

        t = Task(suspender, work=FixedWork(1_000))
        ex.spawn(t)
        opener = Task(lambda: gate.set_value("open"), work=FixedWork(50_000))
        ex.spawn(opener)
        ex.run()
        assert history == ["phase1", "phase2"]
        assert t.phases == 2
        assert t.state is TaskState.TERMINATED

    def test_phase_counters_reflect_suspension(self):
        ex = make_executor(cores=1)
        gate = Future()

        def suspender():
            yield gate

        ex.spawn(Task(suspender, work=FixedWork(100)))
        ex.spawn(Task(lambda: gate.set_value(1), work=FixedWork(10_000)))
        ex.run()
        phases = ex.registry.get("/threads/count/cumulative-phases").get_value()
        assert phases == 3  # 2 for the suspender, 1 for the opener

    def test_yield_on_ready_future_resumes(self):
        ex = make_executor(cores=1)
        ready = Future()
        ready.set_value(7)
        seen = []

        def body():
            yield ready
            seen.append(ready.value)

        ex.spawn(Task(body, work=FixedWork(100)))
        ex.run()
        assert seen == [7]

    def test_yielding_non_future_raises(self):
        ex = make_executor(cores=1)

        def bad():
            yield 42

        ex.spawn(Task(bad, work=FixedWork(100)))
        with pytest.raises(TypeError, match="must yield Future"):
            ex.run()

    def test_deadlock_detection(self):
        ex = make_executor(cores=1)
        never = Future("never")

        def stuck():
            yield never

        ex.spawn(Task(stuck, work=FixedWork(100)))
        with pytest.raises(DeadlockError, match="outstanding"):
            ex.run()


class TestDeterminism:
    def _run(self, seed):
        rt = Runtime(RuntimeConfig(platform="haswell", num_cores=4, seed=seed))
        for i in range(100):
            rt.async_(lambda: None, work=StencilWork(points=1_000 + i))
        result = rt.run()
        return (
            result.execution_time_ns,
            result.pending_accesses,
            result.cumulative_exec_ns,
        )

    def test_same_seed_same_everything(self):
        assert self._run(11) == self._run(11)

    def test_different_seed_different_timing(self):
        assert self._run(11) != self._run(12)
