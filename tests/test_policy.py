"""Unit tests for the policy engine and concurrency throttling."""

import pytest

from repro.apps.stencil1d import StencilConfig, build_stencil_graph
from repro.core.policy import PolicyEngine, PolicyContext, ThrottlingPolicy
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Task
from repro.runtime.work import FixedWork


def stencil_runtime(cores=28, partition=512, total=1 << 19, steps=3, seed=5):
    rt = Runtime(RuntimeConfig(platform="haswell", num_cores=cores, seed=seed))
    cfg = StencilConfig(
        total_points=total, partition_points=partition, time_steps=steps
    )
    build_stencil_graph(rt, cfg)
    return rt


class TestExecutorThrottling:
    def test_limit_clamped(self):
        rt = Runtime(RuntimeConfig(num_cores=4))
        rt.executor.set_active_worker_limit(0)
        assert rt.executor.active_worker_limit == 1
        rt.executor.set_active_worker_limit(99)
        assert rt.executor.active_worker_limit == 4

    def test_throttled_run_completes(self):
        rt = Runtime(RuntimeConfig(num_cores=8, seed=1))
        rt.executor.set_active_worker_limit(2)
        for _ in range(40):
            rt.spawn(Task(lambda: None, work=FixedWork(10_000)))
        result = rt.run()
        assert result.tasks_executed == 40
        # Only the first two workers ever executed anything.
        busy = [w.index for w in rt.executor.workers if w.tasks_executed > 0]
        assert set(busy) <= {0, 1}

    def test_throttling_to_one_worker_serializes(self):
        def time_with(limit):
            rt = Runtime(RuntimeConfig(num_cores=8, seed=2))
            rt.executor.set_active_worker_limit(limit)
            for _ in range(32):
                rt.spawn(Task(lambda: None, work=FixedWork(100_000)))
            return rt.run().execution_time_ns

        assert time_with(1) > time_with(8) * 3

    def test_raising_limit_mid_run_wakes_parked_workers(self):
        rt = Runtime(RuntimeConfig(num_cores=4, seed=3))
        rt.executor.set_active_worker_limit(1)
        for _ in range(16):
            rt.spawn(Task(lambda: None, work=FixedWork(50_000)))
        # Raise the limit after 100 us of virtual time.
        rt.simulator.schedule(
            100_000, lambda: rt.executor.set_active_worker_limit(4)
        )
        rt.run()
        busy = [w.index for w in rt.executor.workers if w.tasks_executed > 0]
        assert len(busy) > 1


class TestPolicyEngine:
    def test_samples_taken(self):
        rt = stencil_runtime(cores=4, partition=4096, total=1 << 18)
        engine = PolicyEngine(rt, interval_ns=50_000)
        engine.run()
        assert engine.samples_taken >= 2
        assert len(rt.sampler.samples) == engine.samples_taken

    def test_invalid_interval(self):
        rt = stencil_runtime(cores=2, partition=4096, total=1 << 16, steps=1)
        with pytest.raises(ValueError):
            PolicyEngine(rt, interval_ns=0)

    def test_policies_receive_context(self):
        rt = stencil_runtime(cores=4, partition=4096, total=1 << 18)
        seen = []

        class Recorder:
            def on_sample(self, sample, ctx: PolicyContext):
                seen.append((sample.length_ns, ctx.num_workers))

        PolicyEngine(rt, interval_ns=50_000).add_policy(Recorder()).run()
        assert seen
        assert all(nw == 4 for _, nw in seen)


class TestThrottlingPolicy:
    def test_fine_grain_gets_throttled_and_faster(self):
        plain = stencil_runtime().run()

        rt = stencil_runtime()
        policy = ThrottlingPolicy()
        result = PolicyEngine(rt, interval_ns=100_000).add_policy(policy).run()

        assert policy.decisions, "no throttling decisions at fine grain"
        assert rt.executor.active_worker_limit < 28
        assert result.execution_time_ns < plain.execution_time_ns

    def test_medium_grain_left_alone_or_harmless(self):
        plain = stencil_runtime(partition=8192).run()
        rt = stencil_runtime(partition=8192)
        policy = ThrottlingPolicy()
        result = PolicyEngine(rt, interval_ns=100_000).add_policy(policy).run()
        assert result.execution_time_ns < plain.execution_time_ns * 1.15

    def test_decisions_logged_with_reasons(self):
        rt = stencil_runtime()
        policy = ThrottlingPolicy()
        PolicyEngine(rt, interval_ns=100_000).add_policy(policy).run()
        for d in policy.decisions:
            assert d.new_limit != d.old_limit
            assert d.reason
            assert d.time_ns >= 0

    def test_never_below_min_workers(self):
        rt = stencil_runtime(cores=8, partition=256, total=1 << 18)
        policy = ThrottlingPolicy(min_workers=3)
        PolicyEngine(rt, interval_ns=50_000).add_policy(policy).run()
        assert rt.executor.active_worker_limit >= 3
        assert all(d.new_limit >= 3 for d in policy.decisions)
