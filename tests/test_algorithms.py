"""Unit tests for the parallel algorithms and chunking policies."""

import pytest

from repro.runtime.algorithms import (
    AutoChunkSize,
    FixedChunkCount,
    StaticChunkSize,
    parallel_for_each,
    parallel_reduce,
)
from repro.runtime.runtime import Runtime, RuntimeConfig


def rt(cores=4, seed=1):
    return Runtime(RuntimeConfig(platform="haswell", num_cores=cores, seed=seed))


class TestPolicies:
    def test_static_validation(self):
        with pytest.raises(ValueError):
            StaticChunkSize(0)

    def test_fixed_count_validation(self):
        with pytest.raises(ValueError):
            FixedChunkCount(0)

    def test_auto_validation(self):
        with pytest.raises(ValueError):
            AutoChunkSize(target_chunk_ns=0)
        with pytest.raises(ValueError):
            AutoChunkSize(probe_items=0)


class TestForEach:
    def test_applies_to_all_items(self):
        runtime = rt()
        seen = []
        items = list(range(100))
        f = parallel_for_each(
            runtime, seen.append, items, chunk=StaticChunkSize(7)
        )
        runtime.run()
        assert f.value == 100
        assert sorted(seen) == items

    def test_empty_input(self):
        runtime = rt()
        f = parallel_for_each(runtime, lambda x: x, [])
        assert f.value == 0

    def test_fixed_chunk_count_task_count(self):
        runtime = rt()
        parallel_for_each(
            runtime, lambda x: x, list(range(100)),
            chunk=FixedChunkCount(8),
        )
        runtime.run()
        assert runtime.executor.total_spawned == 8

    def test_static_chunk_task_count(self):
        runtime = rt()
        parallel_for_each(
            runtime, lambda x: x, list(range(100)), chunk=StaticChunkSize(30)
        )
        runtime.run()
        assert runtime.executor.total_spawned == 4  # 30+30+30+10

    def test_exception_propagates(self):
        runtime = rt()

        def bad(x):
            if x == 13:
                raise ValueError("unlucky")
            return x

        f = parallel_for_each(
            runtime, bad, list(range(20)), chunk=StaticChunkSize(5)
        )
        runtime.run()
        assert f.has_exception

    def test_auto_chunk_probes_then_fans_out(self):
        runtime = rt(cores=8)
        items = list(range(2_000))
        f = parallel_for_each(
            runtime,
            lambda x: None,
            items,
            item_ns=2_000,
            chunk=AutoChunkSize(target_chunk_ns=100_000, probe_items=10),
        )
        runtime.run()
        assert f.value == 2_000
        # Per item ~2 us -> ~50 items per 100 us chunk -> ~40 chunks + probe.
        spawned = runtime.executor.total_spawned
        assert 20 <= spawned <= 80

    def test_auto_chunk_beats_pathological_static(self):
        def total_time(chunk):
            runtime = rt(cores=8, seed=3)
            parallel_for_each(
                runtime, lambda x: None, list(range(4_000)),
                item_ns=1_000, chunk=chunk,
            )
            return runtime.run().execution_time_ns

        auto = total_time(AutoChunkSize(target_chunk_ns=200_000))
        too_fine = total_time(StaticChunkSize(1))
        assert auto < too_fine / 2

    def test_auto_chunk_close_to_best_static(self):
        """The point of auto_chunk_size: near-optimal without tuning."""
        def total_time(chunk, seed=4):
            runtime = rt(cores=8, seed=seed)
            parallel_for_each(
                runtime, lambda x: None, list(range(4_000)),
                item_ns=1_000, chunk=chunk,
            )
            return runtime.run().execution_time_ns

        best_static = min(
            total_time(StaticChunkSize(s)) for s in (32, 64, 128, 256, 512)
        )
        auto = total_time(AutoChunkSize(target_chunk_ns=200_000))
        assert auto <= best_static * 1.4


class TestReduce:
    def test_sum(self):
        runtime = rt()
        f = parallel_reduce(
            runtime, lambda x: x, list(range(101)), lambda a, b: a + b, 0,
            chunk=StaticChunkSize(9),
        )
        runtime.run()
        assert f.value == 5050

    def test_initial_value_included(self):
        runtime = rt()
        f = parallel_reduce(
            runtime, lambda x: x, [1, 2, 3], lambda a, b: a + b, 100
        )
        runtime.run()
        assert f.value == 106

    def test_map_applied(self):
        runtime = rt()
        f = parallel_reduce(
            runtime, lambda x: x * x, list(range(10)), lambda a, b: a + b, 0,
            chunk=StaticChunkSize(3),
        )
        runtime.run()
        assert f.value == sum(x * x for x in range(10))

    def test_empty_returns_initial(self):
        runtime = rt()
        f = parallel_reduce(runtime, lambda x: x, [], lambda a, b: a + b, 42)
        assert f.value == 42

    def test_single_chunk(self):
        runtime = rt()
        f = parallel_reduce(
            runtime, lambda x: x, [5, 6], lambda a, b: a + b, 0,
            chunk=StaticChunkSize(100),
        )
        runtime.run()
        assert f.value == 11

    def test_max_reduction(self):
        runtime = rt()
        values = [3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5]
        f = parallel_reduce(
            runtime, lambda x: x, values, max, float("-inf"),
            chunk=StaticChunkSize(2),
        )
        runtime.run()
        assert f.value == 9

    def test_exception_propagates(self):
        runtime = rt()
        f = parallel_reduce(
            runtime, lambda x: 1 // x, [1, 1, 0, 1], lambda a, b: a + b, 0,
            chunk=StaticChunkSize(1),
        )
        runtime.run()
        assert f.has_exception

    def test_auto_chunk_rejected(self):
        runtime = rt()
        with pytest.raises(NotImplementedError):
            parallel_reduce(
                runtime, lambda x: x, [1], lambda a, b: a + b, 0,
                chunk=AutoChunkSize(),
            )

    def test_parallel_speedup(self):
        def time_with(cores):
            runtime = rt(cores=cores, seed=6)
            parallel_reduce(
                runtime, lambda x: x, list(range(512)), lambda a, b: a + b, 0,
                item_ns=50_000, chunk=StaticChunkSize(8),
            )
            return runtime.run().execution_time_ns

        assert time_with(8) < time_with(1) / 3
