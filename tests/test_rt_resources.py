"""Unit tests for the resource protocols (repro.rt.resources).

The jobs here are bare stand-ins carrying exactly the duck-typed surface
the :class:`ResourceManager` reads (``job_id`` / ``base_priority`` /
``effective_priority``) — the protocol logic is testable without spinning
up the service layer or the simulator.
"""

import pytest

from repro.rt.resources import PROTOCOLS, ResourceManager
from repro.runtime.task import Priority


class FakeJob:
    def __init__(self, job_id: int, priority: Priority):
        self.job_id = job_id
        self.base_priority = priority
        self.effective_priority = priority

    def __repr__(self):
        return f"FakeJob({self.job_id}, {self.effective_priority!r})"


def manager(protocol="none", threshold=1_000, ceilings=None):
    return ResourceManager(
        ("bus",),
        protocol=protocol,
        inversion_threshold_ns=threshold,
        ceilings=ceilings,
    )


def test_grant_when_free_and_block_when_held():
    m = manager()
    low = FakeJob(0, Priority.LOW)
    high = FakeJob(1, Priority.HIGH)
    assert m.acquire(low, "bus", 0)
    assert m.holder("bus") is low
    assert not m.acquire(high, "bus", 10)
    assert m.waiting("bus") == 1
    assert m.stats.blocked == 1


def test_release_grants_highest_priority_waiter():
    m = manager()
    holder = FakeJob(0, Priority.NORMAL)
    mid = FakeJob(1, Priority.NORMAL)
    high = FakeJob(2, Priority.HIGH)
    assert m.acquire(holder, "bus", 0)
    assert not m.acquire(mid, "bus", 5)
    assert not m.acquire(high, "bus", 10)
    winner = m.release(holder, "bus", 100)
    assert winner is high  # priority beats arrival order
    assert m.holder("bus") is high
    assert m.release(high, "bus", 120) is mid


def test_equal_priority_ties_break_on_blocked_since_then_job_id():
    m = manager()
    holder = FakeJob(0, Priority.NORMAL)
    first = FakeJob(2, Priority.NORMAL)
    second = FakeJob(1, Priority.NORMAL)
    m.acquire(holder, "bus", 0)
    m.acquire(first, "bus", 5)
    m.acquire(second, "bus", 9)
    assert m.release(holder, "bus", 50) is first  # earlier blocked-since wins


def test_none_protocol_never_boosts():
    m = manager("none")
    low = FakeJob(0, Priority.LOW)
    high = FakeJob(1, Priority.HIGH)
    m.acquire(low, "bus", 0)
    m.acquire(high, "bus", 10)
    assert low.effective_priority == Priority.LOW
    assert m.stats.inheritance_boosts == 0


def test_inherit_boosts_holder_to_waiter_priority():
    m = manager("inherit")
    boosted = []
    m.on_boost = boosted.append
    low = FakeJob(0, Priority.LOW)
    high = FakeJob(1, Priority.HIGH)
    m.acquire(low, "bus", 0)
    m.acquire(high, "bus", 10)
    assert low.effective_priority == Priority.HIGH
    assert low.base_priority == Priority.LOW
    assert m.stats.inheritance_boosts == 1
    assert boosted == [low]


def test_inherit_boost_is_monotone_not_demoting():
    m = manager("inherit")
    holder = FakeJob(0, Priority.HIGH)
    normal = FakeJob(1, Priority.NORMAL)
    m.acquire(holder, "bus", 0)
    m.acquire(normal, "bus", 5)
    # a lower-priority waiter never demotes the holder
    assert holder.effective_priority == Priority.HIGH
    assert m.stats.inheritance_boosts == 0


def test_inherit_rechains_boost_to_next_holder():
    m = manager("inherit")
    low = FakeJob(0, Priority.LOW)
    mid = FakeJob(1, Priority.NORMAL)
    high = FakeJob(2, Priority.HIGH)
    m.acquire(low, "bus", 0)
    m.acquire(mid, "bus", 5)
    m.acquire(high, "bus", 10)
    winner = m.release(low, "bus", 50)
    assert winner is high
    # the remaining NORMAL waiter keeps no boost on a HIGH holder...
    assert high.effective_priority == Priority.HIGH
    next_winner = m.release(high, "bus", 80)
    # ...and the last holder needs none at all
    assert next_winner is mid
    assert mid.effective_priority == Priority.NORMAL


def test_release_restores_base_priority():
    m = manager("inherit")
    low = FakeJob(0, Priority.LOW)
    high = FakeJob(1, Priority.HIGH)
    m.acquire(low, "bus", 0)
    m.acquire(high, "bus", 10)
    assert low.effective_priority == Priority.HIGH
    m.release(low, "bus", 50)
    assert low.effective_priority == Priority.LOW


def test_ceiling_boosts_on_acquire_before_any_contention():
    m = manager("ceiling", ceilings={"bus": Priority.HIGH})
    boosted = []
    m.on_boost = boosted.append
    low = FakeJob(0, Priority.LOW)
    assert m.acquire(low, "bus", 0)
    assert low.effective_priority == Priority.HIGH  # inversion never begins
    assert boosted == [low]
    m.release(low, "bus", 10)
    assert low.effective_priority == Priority.LOW


def test_ceiling_without_entry_leaves_priority_alone():
    m = manager("ceiling", ceilings={})
    low = FakeJob(0, Priority.LOW)
    m.acquire(low, "bus", 0)
    assert low.effective_priority == Priority.LOW


def test_wait_accounting_and_inversion_threshold():
    m = manager("none", threshold=100)
    holder = FakeJob(0, Priority.LOW)
    a = FakeJob(1, Priority.HIGH)
    b = FakeJob(2, Priority.HIGH)
    m.acquire(holder, "bus", 0)
    m.acquire(a, "bus", 10)
    m.acquire(b, "bus", 20)
    m.release(holder, "bus", 60)   # a waited 50 (below threshold)
    m.release(a, "bus", 400)       # b waited 380 (inversion)
    assert m.stats.blocked == 2
    assert m.stats.blocked_ns == 50 + 380
    assert m.stats.max_blocked_ns == 380
    assert m.stats.inversions == 1


def test_release_of_unheld_resource_raises():
    m = manager()
    outsider = FakeJob(7, Priority.NORMAL)
    with pytest.raises(RuntimeError):
        m.release(outsider, "bus", 0)
    m.acquire(FakeJob(0, Priority.NORMAL), "bus", 0)
    with pytest.raises(RuntimeError):
        m.release(outsider, "bus", 10)


def test_unknown_protocol_and_negative_threshold_rejected():
    with pytest.raises(ValueError):
        ResourceManager(("bus",), protocol="magic")
    with pytest.raises(ValueError):
        ResourceManager(("bus",), inversion_threshold_ns=-1)
    assert PROTOCOLS == ("none", "inherit", "ceiling")
