"""Property tests (hypothesis) over the Task Bench pattern catalogue."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taskbench.kernels import ComputeKernel
from repro.taskbench.patterns import (
    NEAREST_DRAWS,
    NEAREST_RADIUS,
    PATTERNS,
    TaskBenchSpec,
    get_pattern,
)

pattern_names = st.sampled_from(sorted(PATTERNS))
#: powers of two cover every pattern including the butterfly
pow2_widths = st.integers(min_value=0, max_value=6).map(lambda k: 1 << k)
free_widths = st.integers(min_value=1, max_value=64)
steps_st = st.integers(min_value=1, max_value=8)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def make_spec(name, width, steps, seed):
    pattern = get_pattern(name)
    if pattern.requires_pow2_width and width & (width - 1):
        width = 1 << width.bit_length()
    return TaskBenchSpec(pattern=name, width=width, steps=steps, seed=seed)


@settings(max_examples=60, deadline=None)
@given(pattern_names, free_widths, steps_st, seeds)
def test_graphs_are_acyclic_by_construction(name, width, steps, seed):
    """Every edge points from step s-1 to step s: topological by step, so
    no cycle can exist; and every endpoint is inside the grid."""
    spec = make_spec(name, width, steps, seed)
    for (ps, pi), (cs, ci) in spec.edges():
        assert cs == ps + 1
        assert 0 <= ps < spec.steps - 1
        assert 0 <= pi < spec.width
        assert 0 <= ci < spec.width


@settings(max_examples=60, deadline=None)
@given(pattern_names, free_widths, steps_st, seeds)
def test_dependencies_sorted_unique_and_bounded(name, width, steps, seed):
    spec = make_spec(name, width, steps, seed)
    pattern = spec.resolve_pattern()
    for step in range(spec.steps):
        for i in range(spec.width):
            deps = spec.dependencies(step, i)
            assert list(deps) == sorted(set(deps))
            assert len(deps) <= pattern.max_deps or step == 0
            if step == 0:
                assert deps == ()
            elif pattern.max_deps > 0:
                assert deps, f"{name} task ({step},{i}) has no parents"


@settings(max_examples=40, deadline=None)
@given(free_widths, steps_st, seeds)
def test_exact_edge_counts(width, steps, seed):
    """Closed-form edge counts for the deterministic fixed-degree patterns."""
    rows = steps - 1
    expected = {
        "trivial": 0,
        "serial_chain": rows * width,
        "stencil_1d": rows * (3 * width - 2),
        "stencil_1d_periodic": rows * width * min(width, 3),
        "spread": rows * width * min(width, 3),
    }
    for name, count in expected.items():
        spec = TaskBenchSpec(pattern=name, width=width, steps=steps, seed=seed)
        assert spec.edge_count() == count, name


@settings(max_examples=40, deadline=None)
@given(pow2_widths, steps_st, seeds)
def test_fft_edge_count(width, steps, seed):
    spec = TaskBenchSpec(pattern="fft", width=width, steps=steps, seed=seed)
    per_task = 2 if width > 1 else 1
    assert spec.edge_count() == (steps - 1) * width * per_task


@settings(max_examples=40, deadline=None)
@given(free_widths, steps_st, seeds)
def test_tree_and_random_nearest_edge_bounds(width, steps, seed):
    rows = steps - 1
    tree = TaskBenchSpec(pattern="tree", width=width, steps=steps, seed=seed)
    assert rows * width <= tree.edge_count() <= rows * width * 2
    near = TaskBenchSpec(
        pattern="random_nearest", width=width, steps=steps, seed=seed
    )
    assert rows * width <= near.edge_count() <= rows * width * (
        NEAREST_DRAWS + 1
    )


@settings(max_examples=40, deadline=None)
@given(free_widths, steps_st, seeds)
def test_random_nearest_same_seed_same_edges(width, steps, seed):
    a = TaskBenchSpec(
        pattern="random_nearest", width=width, steps=steps, seed=seed
    )
    b = TaskBenchSpec(
        pattern="random_nearest", width=width, steps=steps, seed=seed
    )
    assert set(a.edges()) == set(b.edges())


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=8, max_value=64), steps_st, seeds)
def test_random_nearest_stays_near(width, steps, seed):
    """Drawn neighbours sit within NEAREST_RADIUS (mod width)."""
    spec = TaskBenchSpec(
        pattern="random_nearest", width=width, steps=steps, seed=seed
    )
    for step in range(1, spec.steps):
        for i in range(spec.width):
            for parent in spec.dependencies(step, i):
                distance = min((parent - i) % width, (i - parent) % width)
                assert distance <= NEAREST_RADIUS


def test_random_nearest_seed_changes_edges():
    a = TaskBenchSpec(pattern="random_nearest", width=32, steps=8, seed=1)
    b = TaskBenchSpec(pattern="random_nearest", width=32, steps=8, seed=2)
    assert set(a.edges()) != set(b.edges())


class TestValidation:
    def test_fft_rejects_non_pow2_width(self):
        with pytest.raises(ValueError, match="power-of-two"):
            TaskBenchSpec(pattern="fft", width=48)

    def test_width_must_be_positive(self):
        with pytest.raises(ValueError, match="width"):
            TaskBenchSpec(pattern="trivial", width=0)

    def test_steps_must_be_positive(self):
        with pytest.raises(ValueError, match="steps"):
            TaskBenchSpec(pattern="trivial", steps=0)

    def test_unknown_pattern(self):
        with pytest.raises(KeyError, match="unknown pattern"):
            get_pattern("moebius")

    def test_index_out_of_range(self):
        with pytest.raises(ValueError, match="outside width"):
            get_pattern("stencil_1d").dependencies(8, 1, 8)


class TestSpec:
    def test_total_tasks(self):
        spec = TaskBenchSpec(pattern="trivial", width=5, steps=7)
        assert spec.total_tasks == 35

    def test_with_grain_changes_only_the_kernel(self):
        spec = TaskBenchSpec(
            pattern="stencil_1d", width=8, steps=4,
            kernel=ComputeKernel(1_000), seed=3,
        )
        coarser = spec.with_grain(9_000)
        assert coarser.kernel.grain() == 9_000
        assert (coarser.pattern_name, coarser.width, coarser.steps,
                coarser.seed) == ("stencil_1d", 8, 4, 3)
        assert set(coarser.edges()) == set(spec.edges())

    def test_pattern_object_accepted_directly(self):
        spec = TaskBenchSpec(pattern=get_pattern("tree"), width=8, steps=4)
        assert spec.pattern_name == "tree"
