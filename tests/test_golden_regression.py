"""Golden regression: exact pinned outputs for one fixed configuration.

The simulation is deterministic by design (integer-ns clock, seeded RNG,
tie-broken event order), so one run's headline numbers can be pinned
*exactly*.  If any of these values moves, a change has altered either the
cost model's calibration or the scheduler's event order — both of which
shift every reproduced figure and must be a conscious decision:
re-baseline this file AND re-generate EXPERIMENTS.md together.
"""

import pytest

from repro.apps.stencil1d import StencilConfig, run_stencil
from repro.runtime.runtime import RuntimeConfig

GOLDEN_CONFIG = dict(platform="haswell", num_cores=8, seed=12345)
GOLDEN_STENCIL = dict(
    total_points=1 << 16, partition_points=1024, time_steps=4
)

#: pinned values for the configuration above (see module docstring)
EXPECTED = {
    "execution_time_ns": 105_767,
    "tasks_executed": 256,
    "pending_accesses": 921.0,
    "pending_misses": 665.0,
    "cumulative_exec_ns": 372_019.0,
    "idle_rate": pytest.approx(0.560331908818, abs=1e-9),
    "stolen": 65.0,
    "phases": 256.0,
}


@pytest.fixture(scope="module")
def golden_run():
    out = run_stencil(
        RuntimeConfig(**GOLDEN_CONFIG), StencilConfig(**GOLDEN_STENCIL)
    )
    return out.result


class TestGoldenRun:
    def test_execution_time(self, golden_run):
        assert golden_run.execution_time_ns == EXPECTED["execution_time_ns"]

    def test_task_count(self, golden_run):
        assert golden_run.tasks_executed == EXPECTED["tasks_executed"]

    def test_pending_queue_counters(self, golden_run):
        assert golden_run.pending_accesses == EXPECTED["pending_accesses"]
        assert golden_run.pending_misses == EXPECTED["pending_misses"]

    def test_cumulative_exec(self, golden_run):
        assert golden_run.cumulative_exec_ns == EXPECTED["cumulative_exec_ns"]

    def test_idle_rate(self, golden_run):
        assert golden_run.idle_rate == EXPECTED["idle_rate"]

    def test_steal_count(self, golden_run):
        assert golden_run.counters.get("/threads/count/stolen") == EXPECTED["stolen"]

    def test_phase_count(self, golden_run):
        assert golden_run.phases == EXPECTED["phases"]

    def test_rerun_is_bit_identical(self, golden_run):
        again = run_stencil(
            RuntimeConfig(**GOLDEN_CONFIG), StencilConfig(**GOLDEN_STENCIL)
        ).result
        assert again.execution_time_ns == golden_run.execution_time_ns
        assert again.pending_accesses == golden_run.pending_accesses
        assert again.cumulative_exec_ns == golden_run.cumulative_exec_ns
