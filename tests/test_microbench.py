"""Unit tests for the micro-benchmark task populations."""

import pytest

from repro.apps.microbench import (
    MicrobenchConfig,
    run_forkjoin_tree,
    run_suspension_chain,
    run_task_ladder,
)
from repro.runtime.runtime import RuntimeConfig


def rc(cores=4, seed=1):
    return RuntimeConfig(platform="haswell", num_cores=cores, seed=seed)


class TestConfig:
    def test_task_ns(self):
        cfg = MicrobenchConfig(total_work_ns=1_000_000, num_tasks=100)
        assert cfg.task_ns == 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            MicrobenchConfig(num_tasks=0)
        with pytest.raises(ValueError):
            MicrobenchConfig(total_work_ns=10, num_tasks=100)


class TestTaskLadder:
    def test_executes_all_tasks(self):
        result = run_task_ladder(
            rc(), MicrobenchConfig(total_work_ns=10_000_000, num_tasks=50)
        )
        assert result.tasks_executed == 50

    def test_finer_grain_more_overhead(self):
        """Constant total work split finer must raise total time — the
        fine-grained wall with no dependency structure at all."""
        total = 50_000_000
        coarse = run_task_ladder(
            rc(), MicrobenchConfig(total_work_ns=total, num_tasks=20)
        )
        fine = run_task_ladder(
            rc(), MicrobenchConfig(total_work_ns=total, num_tasks=2_000)
        )
        assert fine.execution_time_ns > coarse.execution_time_ns

    def test_idle_rate_rises_with_fineness(self):
        total = 50_000_000
        coarse = run_task_ladder(
            rc(), MicrobenchConfig(total_work_ns=total, num_tasks=40)
        )
        fine = run_task_ladder(
            rc(), MicrobenchConfig(total_work_ns=total, num_tasks=4_000)
        )
        assert fine.idle_rate > coarse.idle_rate


class TestForkJoin:
    def test_depth_zero_single_leaf(self):
        result = run_forkjoin_tree(rc(), depth=0, leaf_ns=1_000)
        assert result.tasks_executed == 1

    def test_task_count_is_full_tree(self):
        result = run_forkjoin_tree(rc(), depth=4, leaf_ns=1_000)
        # 2^4 leaves + (2^4 - 1) joins.
        assert result.tasks_executed == 31

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            run_forkjoin_tree(rc(), depth=-1, leaf_ns=100)

    def test_parallel_speedup(self):
        t1 = run_forkjoin_tree(rc(cores=1), depth=6, leaf_ns=200_000)
        t8 = run_forkjoin_tree(rc(cores=8), depth=6, leaf_ns=200_000)
        assert t8.execution_time_ns < t1.execution_time_ns


class TestSuspensionChain:
    def test_all_consumers_complete(self):
        result = run_suspension_chain(rc(), length=10, phase_ns=5_000)
        # 10 producers + 10 consumers.
        assert result.tasks_executed == 20

    def test_phases_exceed_tasks(self):
        """Each consumer runs two phases (suspend + resume), so phase count
        must exceed the task count — the signal the paper's phase counters
        were added to expose."""
        result = run_suspension_chain(rc(), length=10, phase_ns=5_000)
        assert result.phases > result.tasks_executed
        assert result.phases == 30  # 10 producers x1 + 10 consumers x2

    def test_length_validation(self):
        with pytest.raises(ValueError):
            run_suspension_chain(rc(), length=0, phase_ns=100)
