"""Unit tests for queues and scheduling policies (incl. Fig. 1's order)."""

import pytest

from repro.runtime.task import Priority, Task
from repro.schedulers import SCHEDULERS, make_scheduler
from repro.schedulers.base import WorkSource
from repro.schedulers.priority_local import PriorityLocalScheduler
from repro.schedulers.queues import DualQueue
from repro.schedulers.variants import (
    GlobalQueueScheduler,
    NumaBlindStealingScheduler,
    StaticScheduler,
)
from repro.sim.machine import Machine
from repro.sim.platforms import HASWELL


def task(name="t", priority=Priority.NORMAL) -> Task:
    return Task(lambda: None, name=name, priority=priority)


def attached(policy, cores=4, platform=HASWELL):
    policy.attach(Machine(platform, cores))
    return policy


class TestDualQueue:
    def test_fifo_order_pending(self):
        q = DualQueue()
        a, b = task("a"), task("b")
        q.push_pending(a)
        q.push_pending(b)
        assert q.pop_pending() is a
        assert q.pop_pending() is b

    def test_fifo_order_staged(self):
        q = DualQueue()
        a, b = task("a"), task("b")
        q.push_staged(a)
        q.push_staged(b)
        assert q.pop_staged() is a
        assert q.pop_staged() is b

    def test_access_and_miss_counting(self):
        q = DualQueue()
        q.pop_pending()  # miss
        q.push_pending(task())
        q.pop_pending()  # hit
        assert q.stats.pending_accesses == 2
        assert q.stats.pending_misses == 1

    def test_staged_counting_separate(self):
        q = DualQueue()
        q.pop_staged()
        assert q.stats.staged_accesses == 1
        assert q.stats.staged_misses == 1
        assert q.stats.pending_accesses == 0

    def test_lengths_do_not_count_accesses(self):
        q = DualQueue()
        q.push_pending(task())
        assert q.pending_len == 1
        assert q.staged_len == 0
        assert not q.is_empty
        assert q.stats.pending_accesses == 0


class TestPriorityLocalOrder:
    """The work-finding order of the paper's Fig. 1."""

    def test_own_pending_first(self):
        p = attached(PriorityLocalScheduler())
        t_pending, t_staged = task("p"), task("s")
        p.enqueue_pending(t_pending, 0)
        p.enqueue_staged(t_staged, 0)
        found = p.find_work(0)
        assert found.task is t_pending
        assert found.source is WorkSource.LOCAL_PENDING

    def test_own_staged_second(self):
        p = attached(PriorityLocalScheduler())
        t = task()
        p.enqueue_staged(t, 0)
        found = p.find_work(0)
        assert found.task is t
        assert found.source is WorkSource.LOCAL_STAGED
        assert not found.source.was_stolen
        assert found.source.was_staged

    def test_numa_staged_before_numa_pending(self):
        # 4 cores on Haswell all share domain 0.
        p = attached(PriorityLocalScheduler(), cores=4)
        t_staged, t_pending = task("s"), task("p")
        p.enqueue_pending(t_pending, 1)
        p.enqueue_staged(t_staged, 2)
        found = p.find_work(0)
        assert found.task is t_staged
        assert found.source is WorkSource.NUMA_STAGED
        assert found.source.was_stolen and found.source.same_domain

    def test_numa_pending_fourth(self):
        p = attached(PriorityLocalScheduler(), cores=4)
        t = task()
        p.enqueue_pending(t, 3)
        found = p.find_work(0)
        assert found.source is WorkSource.NUMA_PENDING

    def test_remote_staged_before_remote_pending(self):
        # 16 cores: workers 14/15 are in NUMA domain 1.
        p = attached(PriorityLocalScheduler(), cores=16)
        t_staged, t_pending = task("rs"), task("rp")
        p.enqueue_pending(t_pending, 14)
        p.enqueue_staged(t_staged, 15)
        found = p.find_work(0)
        assert found.task is t_staged
        assert found.source is WorkSource.REMOTE_STAGED
        assert not found.source.same_domain

    def test_local_numa_preferred_over_remote(self):
        p = attached(PriorityLocalScheduler(), cores=16)
        t_near, t_far = task("near"), task("far")
        p.enqueue_staged(t_far, 15)   # remote domain
        p.enqueue_staged(t_near, 1)   # same domain as worker 0
        found = p.find_work(0)
        assert found.task is t_near

    def test_empty_returns_none(self):
        p = attached(PriorityLocalScheduler())
        assert p.find_work(0) is None

    def test_high_priority_beats_local_pending(self):
        p = attached(PriorityLocalScheduler())
        normal, high = task("n"), task("h", Priority.HIGH)
        p.enqueue_pending(normal, 0)
        p.enqueue_staged(high, 0)
        found = p.find_work(0)
        assert found.task is high
        assert found.source is WorkSource.HIGH_PRIORITY

    def test_high_priority_stolen_before_idle(self):
        p = attached(PriorityLocalScheduler(), cores=4)
        high = task("h", Priority.HIGH)
        p.enqueue_staged(high, 2)  # goes to HP queue #2
        found = p.find_work(0)
        assert found.task is high
        assert found.source is WorkSource.HIGH_PRIORITY

    def test_low_priority_only_when_nothing_else(self):
        p = attached(PriorityLocalScheduler(), cores=2)
        low, normal = task("l", Priority.LOW), task("n")
        p.enqueue_staged(low, 0)
        p.enqueue_staged(normal, 1)
        first = p.find_work(0)
        assert first.task is normal
        second = p.find_work(0)
        assert second.task is low
        assert second.source is WorkSource.LOW_PRIORITY

    def test_hp_queue_count_configurable(self):
        p = attached(PriorityLocalScheduler(num_high_priority_queues=1), cores=4)
        high = task("h", Priority.HIGH)
        p.enqueue_staged(high, 3)  # 3 % 1 == 0: lands in the only HP queue
        assert p.find_work(0).task is high

    def test_invalid_hp_queue_count(self):
        with pytest.raises(ValueError):
            attached(PriorityLocalScheduler(num_high_priority_queues=9), cores=4)

    def test_queued_tasks_counts_everything(self):
        p = attached(PriorityLocalScheduler(), cores=2)
        p.enqueue_staged(task(), 0)
        p.enqueue_pending(task(), 1)
        p.enqueue_staged(task("h", Priority.HIGH), 0)
        assert p.queued_tasks() == 3

    def test_aggregate_stats_sums_queues(self):
        p = attached(PriorityLocalScheduler(), cores=2)
        p.find_work(0)  # misses everywhere
        stats = p.aggregate_stats()
        assert stats.pending_accesses > 0
        assert stats.pending_misses == stats.pending_accesses


class TestStaticScheduler:
    def test_never_steals(self):
        p = attached(StaticScheduler(), cores=2)
        p.enqueue_staged(task(), 1)
        assert p.find_work(0) is None
        assert p.find_work(1) is not None

    def test_own_pending_then_staged(self):
        p = attached(StaticScheduler(), cores=1)
        s, pe = task("s"), task("p")
        p.enqueue_staged(s, 0)
        p.enqueue_pending(pe, 0)
        assert p.find_work(0).task is pe
        assert p.find_work(0).task is s


class TestGlobalQueueScheduler:
    def test_any_worker_sees_all_work(self):
        p = attached(GlobalQueueScheduler(), cores=4)
        p.enqueue_staged(task(), 3)
        assert p.find_work(0) is not None

    def test_fifo_across_producers(self):
        p = attached(GlobalQueueScheduler(), cores=4)
        a, b = task("a"), task("b")
        p.enqueue_staged(a, 2)
        p.enqueue_staged(b, 0)
        assert p.find_work(1).task is a
        assert p.find_work(1).task is b

    def test_contention_penalty_grows(self):
        p = attached(GlobalQueueScheduler(), cores=4)
        assert p.shared_structure_penalty_ns(1) == 0
        assert p.shared_structure_penalty_ns(4) > p.shared_structure_penalty_ns(2)

    def test_per_worker_policies_have_no_penalty(self):
        p = attached(PriorityLocalScheduler(), cores=4)
        assert p.shared_structure_penalty_ns(4) == 0


class TestNumaBlindScheduler:
    def test_steals_in_flat_order(self):
        p = attached(NumaBlindStealingScheduler(), cores=16)
        t_far = task("far")
        p.enqueue_staged(t_far, 14)  # remote domain, but lowest staged index
        found = p.find_work(0)
        assert found.task is t_far
        assert found.source is WorkSource.REMOTE_STAGED

    def test_same_domain_source_labelled(self):
        p = attached(NumaBlindStealingScheduler(), cores=4)
        p.enqueue_staged(task(), 1)
        assert p.find_work(0).source is WorkSource.NUMA_STAGED


class TestRegistry:
    def test_all_registered_schedulers_constructible(self):
        for name in SCHEDULERS:
            policy = make_scheduler(name)
            policy.attach(Machine(HASWELL, 2))
            assert policy.find_work(0) is None

    def test_unknown_scheduler(self):
        with pytest.raises(KeyError, match="unknown scheduler"):
            make_scheduler("fifo-lifo")

    def test_paper_scheduler_is_default_registry_entry(self):
        assert SCHEDULERS["priority-local"] is PriorityLocalScheduler
