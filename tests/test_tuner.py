"""Unit tests for the adaptive grain-size tuner."""

import pytest

from repro.apps.stencil1d import stencil_run_fn
from repro.core.tuner import AdaptiveGrainTuner, TunerConfig
from repro.runtime.runtime import RuntimeConfig

TOTAL = 1 << 18
RUN_FN = stencil_run_fn(TOTAL, time_steps=3)


def make_tuner(initial_grain, max_epochs=20, cores=8, **cfg_overrides):
    config = TunerConfig(
        min_grain=64,
        max_grain=TOTAL,
        initial_grain=initial_grain,
        max_epochs=max_epochs,
        **cfg_overrides,
    )
    return AdaptiveGrainTuner(
        epoch_fn=RUN_FN,
        runtime_config_factory=lambda epoch: RuntimeConfig(
            platform="haswell", num_cores=cores, seed=100 + epoch
        ),
        config=config,
    )


class TestConfigValidation:
    def test_bad_grain_bounds(self):
        with pytest.raises(ValueError):
            TunerConfig(min_grain=0, max_grain=10)
        with pytest.raises(ValueError):
            TunerConfig(min_grain=100, max_grain=10)

    def test_bad_step(self):
        with pytest.raises(ValueError):
            TunerConfig(min_grain=1, max_grain=10, step=1.0)
        with pytest.raises(ValueError):
            TunerConfig(min_grain=1, max_grain=10, step_shrink=1.0)

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            TunerConfig(min_grain=1, max_grain=10, max_epochs=0)


class TestDiagnosis:
    def _metrics(self, td_ns, to_ns, nt, nc, exec_time_ns):
        from repro.core.metrics import GranularityMetrics, MetricInputs

        return GranularityMetrics.compute(
            MetricInputs(
                execution_time_ns=exec_time_ns,
                cumulative_exec_ns=td_ns * nt,
                cumulative_func_ns=(td_ns + to_ns) * nt,
                tasks_executed=nt,
                num_cores=nc,
            )
        )

    def test_too_fine_when_overhead_dominates_many_tasks(self):
        tuner = make_tuner(64)
        # 10k tasks on 4 cores, overhead = duration.
        m = self._metrics(1_000, 1_000, 10_000, 4, 10_000 * 500.0)
        assert tuner.diagnose(m)[0] == "too-fine"

    def test_too_coarse_when_few_tasks_and_starved(self):
        tuner = make_tuner(64)
        # 8 long tasks on 4 cores, only half the machine busy on average.
        m = self._metrics(1_000_000, 10_000, 8, 4, 4_000_000.0)
        assert tuner.diagnose(m)[0] == "too-coarse"

    def test_ok_in_the_middle(self):
        tuner = make_tuner(64)
        # 1000 tasks, negligible overhead, ~full utilization.
        m = self._metrics(100_000, 2_000, 1_000, 4, 26_000_000.0)
        assert tuner.diagnose(m)[0] == "ok"

    def test_one_core_never_too_coarse(self):
        tuner = make_tuner(64)
        m = self._metrics(1_000_000, 1_000, 2, 1, 2_100_000.0)
        assert tuner.diagnose(m)[0] == "ok"


class TestControlLoop:
    def test_from_too_fine_grows(self):
        outcome = make_tuner(64).run()
        assert outcome.converged
        assert outcome.final_grain > 64
        grains = [s.grain for s in outcome.steps[:3]]
        assert grains == sorted(grains)  # initial moves grow

    def test_from_too_coarse_shrinks(self):
        outcome = make_tuner(TOTAL).run()
        assert outcome.converged
        assert outcome.final_grain < TOTAL

    def test_converges_near_oracle(self):
        """Both starting points land within 40% of the sweep optimum."""
        from repro.core.characterize import characterize, default_partition_sweep
        from repro.core.selection import select_by_min_time

        sweep = characterize(
            RUN_FN,
            default_partition_sweep(TOTAL, finest=256, points_per_decade=3),
            platform="haswell",
            num_cores=8,
            repetitions=1,
            seed=7,
            measure_single_core_reference=False,
        )
        oracle = select_by_min_time(sweep)
        for start in (64, TOTAL):
            outcome = make_tuner(start, max_epochs=25).run()
            assert outcome.final_time_s <= oracle.best_execution_time_s * 1.4

    def test_epoch_budget_respected(self):
        outcome = make_tuner(64, max_epochs=3).run()
        assert outcome.epochs <= 3

    def test_trajectory_recorded(self):
        outcome = make_tuner(64, max_epochs=6).run()
        assert [s.epoch for s in outcome.steps] == list(range(outcome.epochs))
        assert outcome.steps[-1].action == "stop"
        assert outcome.best_observed().execution_time_s == min(
            s.execution_time_s for s in outcome.steps
        )

    def test_final_time_matches_final_grain_measurement(self):
        outcome = make_tuner(64).run()
        times = {s.grain: s.execution_time_s for s in outcome.steps}
        assert outcome.final_grain in times

    def test_initial_grain_clamped(self):
        tuner = make_tuner(10)  # below min_grain=64
        outcome = tuner.run()
        assert outcome.steps[0].grain == 64

    def test_best_observed_empty_raises(self):
        from repro.core.tuner import TunerResult

        with pytest.raises(ValueError):
            TunerResult().best_observed()
