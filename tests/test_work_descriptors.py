"""Unit tests for work descriptors."""

import pytest

from repro.runtime.work import FixedWork, NoWork, StencilWork, WorkDescriptor


class TestStencilWork:
    def test_holds_points(self):
        assert StencilWork(points=4096).points == 4096

    def test_frozen(self):
        w = StencilWork(points=10)
        with pytest.raises(AttributeError):
            w.points = 20  # type: ignore[misc]

    def test_equality_by_value(self):
        assert StencilWork(5) == StencilWork(5)
        assert StencilWork(5) != StencilWork(6)

    @pytest.mark.parametrize("bad", [0, -1, -100])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            StencilWork(points=bad)

    def test_is_descriptor(self):
        assert isinstance(StencilWork(1), WorkDescriptor)


class TestFixedWork:
    def test_holds_ns(self):
        assert FixedWork(ns=1_000).ns == 1_000

    @pytest.mark.parametrize("bad", [0, -5])
    def test_rejects_nonpositive(self, bad):
        with pytest.raises(ValueError):
            FixedWork(ns=bad)

    def test_is_descriptor(self):
        assert isinstance(FixedWork(1), WorkDescriptor)


class TestNoWork:
    def test_singleton_like_equality(self):
        assert NoWork() == NoWork()

    def test_is_descriptor(self):
        assert isinstance(NoWork(), WorkDescriptor)
