"""The Task Bench driver lowers every pattern onto every runtime."""

import pytest

from repro.dist.runtime import DistConfig
from repro.runtime.runtime import RuntimeConfig
from repro.taskbench.driver import (
    make_placement,
    run_taskbench,
    run_taskbench_dist,
    run_taskbench_threads,
    taskbench_run_fn,
)
from repro.taskbench.kernels import (
    ComputeKernel,
    ImbalancedKernel,
    MemoryKernel,
)
from repro.taskbench.patterns import PATTERNS, TaskBenchSpec

CONFIG = RuntimeConfig(
    platform="haswell", num_cores=4, scheduler="priority-local", seed=0
)


def spec_for(name: str, **kwargs) -> TaskBenchSpec:
    kwargs.setdefault("width", 8)  # power of two: valid for every pattern
    kwargs.setdefault("steps", 4)
    return TaskBenchSpec(pattern=name, **kwargs)


class TestSimulatedRuntime:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_every_pattern_executes_the_whole_grid(self, name):
        spec = spec_for(name)
        result = run_taskbench(CONFIG, spec)
        assert result.tasks_executed == spec.total_tasks
        assert result.execution_time_ns > 0
        assert 0.0 <= result.idle_rate <= 1.0

    def test_bit_reproducible_for_fixed_seed(self):
        spec = spec_for("random_nearest", seed=7)
        a = run_taskbench(CONFIG, spec)
        b = run_taskbench(CONFIG, spec)
        assert a.execution_time_ns == b.execution_time_ns
        assert a.counters == b.counters

    def test_dependencies_serialize_the_chain(self):
        """One serial column cannot finish faster than its tasks' sum."""
        spec = TaskBenchSpec(
            pattern="serial_chain", width=1, steps=16,
            kernel=ComputeKernel(10_000),
        )
        result = run_taskbench(CONFIG, spec)
        assert result.execution_time_ns >= 16 * 10_000

    def test_trivial_runs_wide_open(self):
        """Independent tasks finish far sooner than their serialized sum."""
        spec = TaskBenchSpec(
            pattern="trivial", width=16, steps=4, kernel=ComputeKernel(50_000)
        )
        result = run_taskbench(CONFIG, spec)
        assert result.execution_time_ns < 64 * 50_000

    @pytest.mark.parametrize(
        "kernel",
        [ComputeKernel(1_500), MemoryKernel(2_048),
         ImbalancedKernel(1_500, imbalance=2.0)],
        ids=["compute", "memory", "imbalanced"],
    )
    def test_every_kernel_kind_runs(self, kernel):
        spec = spec_for("stencil_1d", kernel=kernel)
        result = run_taskbench(CONFIG, spec)
        assert result.tasks_executed == spec.total_tasks

    def test_run_fn_protocol(self):
        run_fn = taskbench_run_fn(spec_for("stencil_1d"))
        result = run_fn(CONFIG, 5_000)
        assert result.tasks_executed == 32
        # the grain knob actually reached the kernel
        finer = run_fn(CONFIG, 500)
        assert finer.execution_time_ns < result.execution_time_ns


class TestImbalancedKernel:
    def test_skew_is_seeded_and_bounded(self):
        kernel = ImbalancedKernel(task_ns=1_000, imbalance=1.0)
        for step in range(4):
            for i in range(8):
                work = kernel.work_for(step, i, seed=5)
                again = kernel.work_for(step, i, seed=5)
                assert work == again
                assert 1_000 <= work.ns < 2_000

    def test_different_tasks_get_different_skew(self):
        kernel = ImbalancedKernel(task_ns=1_000, imbalance=1.0)
        durations = {kernel.work_for(0, i, seed=5).ns for i in range(16)}
        assert len(durations) > 1


class TestThreadRuntime:
    def test_stencil_on_real_threads(self):
        spec = spec_for("stencil_1d")
        assert run_taskbench_threads(spec, num_workers=2) == spec.total_tasks

    def test_fft_on_real_threads(self):
        spec = spec_for("fft")
        assert run_taskbench_threads(spec, num_workers=2) == spec.total_tasks


class TestDistRuntime:
    def dist_config(self, localities: int) -> DistConfig:
        return DistConfig(
            num_localities=localities,
            platform="haswell",
            cores_per_locality=2,
            scheduler="priority-local",
            seed=0,
        )

    @pytest.mark.parametrize("placement", ["block", "cyclic"])
    def test_stencil_across_localities(self, placement):
        spec = spec_for("stencil_1d")
        result = run_taskbench_dist(
            self.dist_config(4), spec, placement=placement
        )
        result.assert_parcels_conserved()
        assert result.parcels_sent > 0
        assert result.parcels_received == result.parcels_sent
        assert 0.0 <= result.idle_rate <= 1.0

    def test_cyclic_ships_more_than_block(self):
        """Block placement keeps neighbour edges local except at block
        boundaries; cyclic placement makes every one of them cross."""
        spec = spec_for("stencil_1d", width=16)
        block = run_taskbench_dist(self.dist_config(4), spec, placement="block")
        cyclic = run_taskbench_dist(
            self.dist_config(4), spec, placement="cyclic"
        )
        assert cyclic.parcels_sent > block.parcels_sent

    def test_single_locality_never_touches_the_network(self):
        result = run_taskbench_dist(self.dist_config(1), spec_for("stencil_1d"))
        assert result.parcels_sent == 0

    def test_trivial_pattern_ships_nothing(self):
        result = run_taskbench_dist(self.dist_config(4), spec_for("trivial"))
        assert result.parcels_sent == 0

    def test_dist_bit_reproducible(self):
        spec = spec_for("fft", seed=3)
        a = run_taskbench_dist(self.dist_config(2), spec)
        b = run_taskbench_dist(self.dist_config(2), spec)
        assert a.execution_time_ns == b.execution_time_ns
        assert a.parcels_sent == b.parcels_sent


class TestPlacement:
    def test_block_is_contiguous_and_balanced(self):
        place = make_placement("block", 8, 2)
        assert [place(i) for i in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_cyclic_round_robins(self):
        place = make_placement("cyclic", 8, 2)
        assert [place(i) for i in range(8)] == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            make_placement("hilbert", 8, 2)

    def test_more_localities_than_columns_rejected(self):
        with pytest.raises(ValueError, match="localities"):
            make_placement("block", 2, 4)
