"""Unit tests for machine topology and the Table I platform database."""

import pytest

from repro.sim.machine import Machine
from repro.sim.platforms import (
    HASWELL,
    IVY_BRIDGE,
    PLATFORMS,
    SANDY_BRIDGE,
    XEON_PHI,
    get_platform,
)


class TestPlatformDatabase:
    def test_four_platforms(self):
        assert set(PLATFORMS) == {
            "sandy-bridge", "ivy-bridge", "haswell", "xeon-phi",
        }

    def test_table1_haswell(self):
        assert HASWELL.cores == 28
        assert HASWELL.clock_ghz == 2.3
        assert HASWELL.turbo_ghz == 3.3
        assert HASWELL.l2_bytes == 256 * 1024
        assert HASWELL.shared_l3_bytes == 35 * 1024 * 1024
        assert HASWELL.ram_bytes == 128 * 1024**3

    def test_table1_xeon_phi(self):
        assert XEON_PHI.cores == 61
        assert XEON_PHI.clock_ghz == 1.2
        assert XEON_PHI.hardware_threads_per_core == 4
        assert XEON_PHI.l2_bytes == 512 * 1024
        assert XEON_PHI.shared_l3_bytes is None
        assert XEON_PHI.ram_bytes == 8 * 1024**3
        assert XEON_PHI.paper_time_steps == 5

    def test_table1_sandy_bridge(self):
        assert SANDY_BRIDGE.cores == 16
        assert SANDY_BRIDGE.clock_ghz == 2.9
        assert SANDY_BRIDGE.turbo_ghz == 3.8
        assert SANDY_BRIDGE.shared_l3_bytes == 20 * 1024 * 1024

    def test_table1_ivy_bridge(self):
        assert IVY_BRIDGE.cores == 20
        assert IVY_BRIDGE.clock_ghz == 2.3
        assert IVY_BRIDGE.shared_l3_bytes == 35 * 1024 * 1024

    def test_aliases(self):
        assert get_platform("hw") is HASWELL
        assert get_platform("KNC") is XEON_PHI
        assert get_platform("phi") is XEON_PHI
        assert get_platform("sb") is SANDY_BRIDGE
        assert get_platform("Haswell".lower()) is HASWELL

    def test_unknown_platform_raises(self):
        with pytest.raises(KeyError, match="unknown platform"):
            get_platform("skylake")

    def test_calibration_anchor_haswell(self):
        # Sec. IV-A: 12,500 points take ~21 us on one Haswell core.  The
        # per-point calibration must place the raw compute time in that
        # neighbourhood (cache/interference factors move it at most ~30%).
        raw_us = 12_500 * HASWELL.costs.per_point_ns / 1e3
        assert 10 < raw_us < 30

    def test_calibration_anchor_phi(self):
        # Sec. IV-A: the same partition takes ~1.1 ms on a Phi core.
        raw_ms = 12_500 * XEON_PHI.costs.per_point_ns / 1e6
        assert 0.7 < raw_ms < 1.6

    def test_fig3_core_counts_within_platform(self):
        for spec in PLATFORMS.values():
            assert spec.fig3_core_counts
            assert max(spec.fig3_core_counts) <= spec.cores
            assert min(spec.fig3_core_counts) == 1

    def test_cache_string(self):
        assert "256 KB L2" in HASWELL.cache_string()
        assert "35 MB shared" in HASWELL.cache_string()
        assert "shared" not in XEON_PHI.cache_string()


class TestMachine:
    def test_full_haswell_topology(self):
        m = Machine(HASWELL, 28)
        assert len(m.cores) == 28
        assert m.num_domains == 2
        assert len(m.domains[0].core_indices) == 14
        assert len(m.domains[1].core_indices) == 14

    def test_cores_fill_domains_contiguously(self):
        m = Machine(HASWELL, 16)
        # 14 cores in domain 0, then 2 spill into domain 1.
        assert m.domain_of(0) == 0
        assert m.domain_of(13) == 0
        assert m.domain_of(14) == 1
        assert m.domain_of(15) == 1

    def test_single_core(self):
        m = Machine(HASWELL, 1)
        assert m.num_domains == 1
        assert m.same_domain_cores(0) == ()
        assert m.remote_domain_cores(0) == ()

    def test_same_domain_excludes_self(self):
        m = Machine(HASWELL, 4)
        assert m.same_domain_cores(2) == (0, 1, 3)

    def test_remote_domain_cores(self):
        m = Machine(HASWELL, 16)
        assert m.remote_domain_cores(0) == (14, 15)
        assert set(m.remote_domain_cores(15)) == set(range(14))

    def test_phi_single_domain(self):
        m = Machine(XEON_PHI, 60)
        assert m.num_domains == 1
        assert len(m.same_domain_cores(30)) == 59
        assert m.remote_domain_cores(30) == ()

    def test_invalid_core_counts(self):
        with pytest.raises(ValueError):
            Machine(HASWELL, 0)
        with pytest.raises(ValueError):
            Machine(HASWELL, 29)

    def test_domains_by_index_missing(self):
        m = Machine(HASWELL, 4)
        with pytest.raises(KeyError):
            m.domains_by_index(1)
