"""Every example script must run cleanly end-to-end.

Examples are user-facing documentation; this keeps them from rotting as the
library evolves.  Marked ``slow``: together they cost a couple of minutes.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: a string each example must print (proof it reached its payoff, not just
#: exited early)
EXPECTED_OUTPUT = {
    "quickstart.py": "sum of squares",
    "stencil_characterization.py": "grain selection",
    "adaptive_granularity.py": "recommended grain",
    "graph_workload.py": "scheduler ablation",
    "dynamic_monitoring.py": "whole run:",
    "schedule_visualization.py": "critical path",
    "parallel_algorithms.py": "auto vs best static",
    "distributed_stencil.py": "best grain moves coarser",
    "fault_injection.py": "parcel conservation holds",
    "crash_recovery.py": "bit-identical to the crash-free run: True",
    "realtime_tasks.py": "reruns bit-identical (miss sets, time, counters): True",
    "taskbench_patterns.py": "the dependence-free pattern tolerates",
    "tail_tolerance.py": "the 4x straggler stayed gray: True",
    "overload_control.py": "goodput plateaus",
}


def test_every_example_has_an_expectation():
    assert set(EXAMPLES) == set(EXPECTED_OUTPUT)


@pytest.mark.slow
@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / example)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert EXPECTED_OUTPUT[example] in proc.stdout
