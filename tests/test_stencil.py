"""Unit tests for HPX-Stencil: configuration, Fig. 2 dependencies, numerics."""

import numpy as np
import pytest

from repro.apps.stencil1d import (
    StencilConfig,
    build_stencil_graph,
    heat_partition,
    initial_condition,
    run_stencil,
    serial_reference,
    stencil_run_fn,
)
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.work import StencilWork


class TestConfig:
    def test_partition_count(self):
        cfg = StencilConfig(total_points=1000, partition_points=100, time_steps=1)
        assert cfg.num_partitions == 10

    def test_partition_count_with_remainder(self):
        cfg = StencilConfig(total_points=1000, partition_points=300, time_steps=1)
        assert cfg.num_partitions == 4
        assert cfg.partition_sizes() == [300, 300, 300, 100]

    def test_total_tasks(self):
        cfg = StencilConfig(total_points=1000, partition_points=100, time_steps=7)
        assert cfg.total_tasks == 70

    def test_validation(self):
        with pytest.raises(ValueError):
            StencilConfig(total_points=0, partition_points=1, time_steps=1)
        with pytest.raises(ValueError):
            StencilConfig(total_points=10, partition_points=11, time_steps=1)
        with pytest.raises(ValueError):
            StencilConfig(total_points=10, partition_points=5, time_steps=-1)
        with pytest.raises(ValueError):
            StencilConfig(
                total_points=10, partition_points=5, time_steps=1,
                heat_coefficient=0.75,
            )


class TestKernel:
    def test_heat_partition_matches_pointwise_formula(self):
        left = np.array([1.0, 2.0])
        mid = np.array([3.0, 4.0, 5.0])
        right = np.array([6.0, 7.0])
        out = heat_partition(left, mid, right, 0.25)
        c = 0.25
        assert out[0] == pytest.approx(3 + c * (2.0 - 6.0 + 4.0))
        assert out[1] == pytest.approx(4 + c * (3.0 - 8.0 + 5.0))
        assert out[2] == pytest.approx(5 + c * (4.0 - 10.0 + 6.0))

    def test_heat_partition_size_one(self):
        out = heat_partition(
            np.array([2.0]), np.array([10.0]), np.array([4.0]), 0.5
        )
        assert out == pytest.approx([10.0 + 0.5 * (2.0 - 20.0 + 4.0)])

    def test_serial_reference_conserves_heat(self):
        # The explicit scheme on a ring conserves the total temperature.
        u0 = initial_condition(500)
        u = serial_reference(u0, 25, 0.25)
        assert u.sum() == pytest.approx(u0.sum(), rel=1e-12)

    def test_serial_reference_smooths(self):
        u0 = initial_condition(500)
        u = serial_reference(u0, 50, 0.25)
        assert np.var(u) < np.var(u0)


class TestGraphStructure:
    """The dependency graph of the paper's Fig. 2."""

    def test_final_futures_count(self):
        rt = Runtime(num_cores=1)
        cfg = StencilConfig(total_points=800, partition_points=100, time_steps=3)
        finals = build_stencil_graph(rt, cfg)
        assert len(finals) == 8

    def test_total_spawned_tasks(self):
        rt = Runtime(num_cores=2)
        cfg = StencilConfig(total_points=800, partition_points=100, time_steps=3)
        build_stencil_graph(rt, cfg)
        rt.run()
        assert rt.executor.total_spawned == cfg.total_tasks

    def test_zero_time_steps_graph_is_ready(self):
        rt = Runtime(num_cores=1)
        cfg = StencilConfig(total_points=100, partition_points=50, time_steps=0)
        finals = build_stencil_graph(rt, cfg)
        assert all(f.is_ready for f in finals)

    def test_work_descriptors_carry_partition_sizes(self):
        rt = Runtime(num_cores=1)
        cfg = StencilConfig(total_points=250, partition_points=100, time_steps=1)
        build_stencil_graph(rt, cfg)
        staged = []
        for q in rt.policy.queues():
            while True:
                t = q.pop_staged()
                if t is None:
                    break
                staged.append(t)
        sizes = sorted(t.work.points for t in staged)
        assert sizes == [50, 100, 100]
        assert all(isinstance(t.work, StencilWork) for t in staged)

    def test_single_partition_ring(self):
        cfg = StencilConfig(
            total_points=64, partition_points=64, time_steps=4, validate=True
        )
        out = run_stencil(RuntimeConfig(num_cores=2), cfg)
        ref = serial_reference(initial_condition(64), 4, 0.25)
        np.testing.assert_allclose(out.final_array(), ref)

    def test_dependency_order_no_step_skipping(self):
        """Every partition of step t must terminate before any partition of
        step t+2 with overlapping neighbourhood — verified via completion
        ordering of a 2-partition ring, where every partition depends on
        every partition of the previous step."""
        rt = Runtime(num_cores=2)
        cfg = StencilConfig(total_points=200, partition_points=100, time_steps=5)
        finals = build_stencil_graph(rt, cfg)
        completion = {}

        def track(step, i, future):
            future.on_ready(
                lambda f: completion.setdefault((step, i), rt.simulator.now)
            )

        for i, f in enumerate(finals):
            track(cfg.time_steps, i, f)
        rt.run()
        assert all(f.is_ready for f in finals)


class TestNumericalValidation:
    @pytest.mark.parametrize("partition_points", [16, 100, 250, 1000])
    def test_matches_serial_reference(self, partition_points):
        cfg = StencilConfig(
            total_points=1000,
            partition_points=partition_points,
            time_steps=10,
            validate=True,
        )
        out = run_stencil(RuntimeConfig(num_cores=4, seed=2), cfg)
        ref = serial_reference(initial_condition(1000), 10, 0.25)
        np.testing.assert_allclose(out.final_array(), ref, rtol=1e-12)

    def test_result_independent_of_core_count(self):
        cfg = StencilConfig(
            total_points=600, partition_points=77, time_steps=5, validate=True
        )
        a = run_stencil(RuntimeConfig(num_cores=1), cfg).final_array()
        b = run_stencil(RuntimeConfig(num_cores=8), cfg).final_array()
        np.testing.assert_array_equal(a, b)

    def test_token_run_refuses_final_array(self):
        cfg = StencilConfig(total_points=100, partition_points=50, time_steps=1)
        out = run_stencil(RuntimeConfig(num_cores=1), cfg)
        with pytest.raises(ValueError):
            out.final_array()


class TestRunFn:
    def test_protocol(self):
        run_fn = stencil_run_fn(1 << 12, time_steps=2)
        result = run_fn(RuntimeConfig(num_cores=2, seed=3), 256)
        assert result.tasks_executed == (1 << 12) // 256 * 2

    def test_validate_mode(self):
        run_fn = stencil_run_fn(512, time_steps=2, validate=True)
        result = run_fn(RuntimeConfig(num_cores=2), 128)
        assert result.execution_time_ns > 0
