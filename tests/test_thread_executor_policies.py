"""Thread-executor integration with every scheduling policy.

The policies are shared verbatim between the simulated and the real-thread
executor; these tests pin that property under true concurrency: no policy
loses or duplicates tasks when real threads race on the (locked) queues.
"""

import threading

import pytest

from repro.runtime.thread_executor import ThreadRuntime
from repro.schedulers import SCHEDULERS


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_policy_runs_tasks_on_real_threads(scheduler):
    with ThreadRuntime(num_workers=4, scheduler=scheduler) as rt:
        futures = [rt.async_(lambda i=i: i * 3) for i in range(100)]
        rt.wait_idle(timeout_s=30)
        assert [f.value for f in futures] == [i * 3 for i in range(100)]
        assert rt.registry.get("/threads/count/cumulative").get_value() == 100


@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
def test_policy_dataflow_chain_on_real_threads(scheduler):
    with ThreadRuntime(num_workers=3, scheduler=scheduler) as rt:
        f = rt.async_(lambda: 0)
        for _ in range(20):
            f = rt.dataflow(lambda x: x + 1, [f])
        assert rt.wait(f, timeout_s=30) == 20


def test_static_policy_requires_local_work():
    """Under the static policy a worker only runs its own queue, so a task
    spawned by worker 0's continuation stays on worker 0 — the run must
    still complete (no lost work), just without balancing."""
    with ThreadRuntime(num_workers=2, scheduler="static") as rt:
        done = threading.Event()
        f = rt.async_(lambda: done.set())
        rt.wait(f, timeout_s=30)
        assert done.is_set()


def test_concurrent_submitters():
    """Multiple external threads submitting simultaneously: counts hold."""
    with ThreadRuntime(num_workers=4) as rt:
        futures: list = []
        lock = threading.Lock()

        def submit_batch():
            local = [rt.async_(lambda i=i: i) for i in range(50)]
            with lock:
                futures.extend(local)

        submitters = [threading.Thread(target=submit_batch) for _ in range(4)]
        for t in submitters:
            t.start()
        for t in submitters:
            t.join()
        rt.wait_idle(timeout_s=30)
        assert len(futures) == 200
        assert all(f.is_ready for f in futures)
        assert rt.registry.get("/threads/count/cumulative").get_value() == 200
