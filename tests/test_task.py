"""Unit tests for the Task lifecycle (the five HPX-thread states)."""

import pytest

from repro.runtime.task import Priority, Task, TaskState
from repro.runtime.work import FixedWork, NoWork


class TestConstruction:
    def test_new_task_is_staged(self):
        assert Task(lambda: None).state is TaskState.STAGED

    def test_default_work_is_nowork(self):
        assert isinstance(Task(lambda: None).work, NoWork)

    def test_default_priority_normal(self):
        assert Task(lambda: None).priority is Priority.NORMAL

    def test_unique_ids(self):
        a, b = Task(lambda: None), Task(lambda: None)
        assert a.task_id != b.task_id

    def test_default_name_from_id(self):
        t = Task(lambda: None)
        assert t.name == f"task#{t.task_id}"

    def test_explicit_name(self):
        assert Task(lambda: None, name="U[1][2]").name == "U[1][2]"


class TestLifecycle:
    def test_happy_path(self):
        t = Task(lambda: None)
        t.set_state(TaskState.PENDING)
        t.set_state(TaskState.ACTIVE)
        t.set_state(TaskState.TERMINATED)
        assert t.is_terminated

    def test_suspension_cycle(self):
        t = Task(lambda: None)
        t.set_state(TaskState.PENDING)
        t.set_state(TaskState.ACTIVE)
        t.set_state(TaskState.SUSPENDED)
        t.set_state(TaskState.PENDING)
        t.set_state(TaskState.ACTIVE)
        t.set_state(TaskState.TERMINATED)
        assert t.is_terminated

    @pytest.mark.parametrize(
        "bad_target",
        [TaskState.ACTIVE, TaskState.SUSPENDED, TaskState.TERMINATED,
         TaskState.STAGED],
    )
    def test_illegal_transitions_from_staged(self, bad_target):
        t = Task(lambda: None)
        with pytest.raises(RuntimeError, match="illegal task transition"):
            t.set_state(bad_target)

    def test_terminated_is_final(self):
        t = Task(lambda: None)
        t.set_state(TaskState.PENDING)
        t.set_state(TaskState.ACTIVE)
        t.set_state(TaskState.TERMINATED)
        for target in TaskState:
            with pytest.raises(RuntimeError):
                t.set_state(target)

    def test_pending_cannot_suspend(self):
        t = Task(lambda: None)
        t.set_state(TaskState.PENDING)
        with pytest.raises(RuntimeError):
            t.set_state(TaskState.SUSPENDED)


class TestAccounting:
    def test_phases_count_activations(self):
        t = Task(lambda: None)
        assert t.phases == 0
        assert t.begin_phase() == 1
        assert t.begin_phase() == 2
        assert t.phases == 2

    def test_func_ns_is_exec_plus_overhead(self):
        t = Task(lambda: None, work=FixedWork(10))
        t.exec_ns = 700
        t.overhead_ns = 300
        assert t.func_ns == 1000

    def test_priorities_ordered(self):
        assert Priority.LOW < Priority.NORMAL < Priority.HIGH
