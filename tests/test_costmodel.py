"""Unit tests for the cost model — each paper mechanism in isolation."""

import pytest

from repro.sim.costmodel import CostModel
from repro.sim.platforms import HASWELL, XEON_PHI


def model(platform=HASWELL, cores=8, **kwargs) -> CostModel:
    return CostModel(platform, cores, **kwargs)


class TestTaskCosts:
    def test_budget_split_sums_to_total(self):
        # The run-level jitter perturbs the budget by a few percent (see
        # CostParams.run_jitter_*), so the check allows that envelope.
        m = model()
        costs = m.task_costs(active_cores=1)
        total = costs.create_ns + costs.convert_ns + costs.switch_ns
        expected = HASWELL.costs.task_overhead_ns + HASWELL.costs.timer_overhead_ns
        assert total == pytest.approx(expected, rel=0.06)

    def test_contention_grows_with_active_cores(self):
        m = model(cores=28)
        single = m.task_costs(1).total_ns
        many = m.task_costs(28).total_ns
        assert many > single * 5  # convex growth, Sec. IV-A's 90% idle-rates

    def test_contention_convexity(self):
        m = model(cores=28)
        c8 = m.task_costs(8).total_ns
        c16 = m.task_costs(16).total_ns
        c28 = m.task_costs(28).total_ns
        assert (c28 - c16) > (c16 - c8)

    def test_timer_counters_add_cost(self):
        with_timer = model(seed=1).task_costs(1).total_ns
        without = model(seed=1, timer_counters_enabled=False).task_costs(1).total_ns
        assert with_timer - without == pytest.approx(
            HASWELL.costs.timer_overhead_ns, abs=2
        )

    def test_poll_and_steal_costs(self):
        m = model()
        assert m.poll_cost_ns() > 0
        assert m.steal_cost_ns(same_domain=True) < m.steal_cost_ns(same_domain=False)


class TestBackoff:
    def test_backoff_grows_then_caps(self):
        m = model()
        values = [m.idle_backoff_ns(k) for k in range(1, 12)]
        assert values[0] < values[1] < values[2]
        assert values[6] == values[10]  # capped

    def test_backoff_is_deterministic(self):
        assert model().idle_backoff_ns(3) == model().idle_backoff_ns(3)


class TestCacheFactor:
    def test_l1_resident_is_fastest(self):
        m = model()
        assert m.cache_factor(100) < 1.0

    def test_l2_resident_is_baseline(self):
        m = model()
        # 3 KB/point working set: 5000 points = 120 KB < 256 KB L2.
        assert m.cache_factor(5_000) == 1.0

    def test_llc_slower_than_l2(self):
        m = model()
        assert m.cache_factor(100_000) > m.cache_factor(5_000)

    def test_dram_slowest(self):
        m = model()
        assert m.cache_factor(10_000_000) > m.cache_factor(100_000)

    def test_phi_has_no_llc_tier(self):
        m = model(platform=XEON_PHI)
        # Beyond L2 goes straight to (GDDR) DRAM pricing.
        assert m.cache_factor(100_000) == m.cache_factor(10_000_000)


class TestBandwidthInflation:
    def test_single_core_no_inflation(self):
        assert model().bandwidth_inflation(1.0) == 1.0

    def test_inflation_monotone_in_cores(self):
        m = model(cores=28)
        values = [m.bandwidth_inflation(float(n)) for n in (1, 4, 8, 16, 28)]
        assert values == sorted(values)
        assert values[-1] > 2.0  # the paper's strong-scaling ceiling

    def test_fractional_effective_cores(self):
        m = model()
        assert m.bandwidth_inflation(3.5) <= m.bandwidth_inflation(4.0)


class TestComputeNs:
    def test_scales_linearly_with_points_within_cache_tier(self):
        # Both sizes sit in the L2 tier (72 KB and 144 KB working sets), so
        # the cache factor is constant and time is linear in points.
        m = model(cores=1)
        t1 = m.compute_ns(3_000, active_cores=1, idle_cores=0, jitter=False)
        t2 = m.compute_ns(6_000, active_cores=1, idle_cores=0, jitter=False)
        assert t2 == pytest.approx(2 * t1, rel=0.02)

    def test_contention_inflates_duration(self):
        m = model(cores=28)
        solo = m.compute_ns(50_000, active_cores=1, idle_cores=27, jitter=False)
        crowded = m.compute_ns(50_000, active_cores=28, idle_cores=0, jitter=False)
        assert crowded > solo * 1.5

    def test_duty_cycle_damps_inflation(self):
        # Overhead-bound tasks do not saturate bandwidth (fine-grain region).
        m = model(cores=28)
        full = m.compute_ns(1_000, active_cores=28, idle_cores=0, jitter=False)
        damped = m.compute_ns(
            1_000, active_cores=28, idle_cores=0, mgmt_ns=20_000, jitter=False
        )
        assert damped < full

    def test_solo_interference_when_no_idle_cores(self):
        m = model(cores=1)
        busy = m.compute_ns(10_000, active_cores=1, idle_cores=0, jitter=False)
        m2 = model(cores=2)
        relaxed = m2.compute_ns(10_000, active_cores=1, idle_cores=1, jitter=False)
        assert busy > relaxed  # the negative-wait mechanism

    def test_jitter_bounded(self):
        m = model(seed=42)
        base = m.compute_ns(10_000, active_cores=1, idle_cores=1, jitter=False)
        j = HASWELL.costs.jitter_frac
        for _ in range(50):
            v = m.compute_ns(10_000, active_cores=1, idle_cores=1)
            assert base * (1 - 1.5 * j) <= v <= base * (1 + 1.5 * j)

    def test_jitter_deterministic_per_seed(self):
        a = [
            model(seed=7).compute_ns(5_000, active_cores=1, idle_cores=1)
            for _ in range(1)
        ]
        b = [
            model(seed=7).compute_ns(5_000, active_cores=1, idle_cores=1)
            for _ in range(1)
        ]
        assert a == b

    def test_duration_at_least_one(self):
        m = model()
        assert m.compute_ns(1, active_cores=1, idle_cores=1) >= 1


class TestUniformWork:
    def test_nominal_duration(self):
        m = model()
        assert m.uniform_work_ns(5_000, jitter=False) == 5_000

    def test_jittered_near_nominal(self):
        m = model(seed=3)
        v = m.uniform_work_ns(100_000)
        assert 90_000 < v < 110_000


class TestPaperAnchor:
    def test_haswell_12500_points_near_21us_single_core(self):
        """Sec. IV-A: 'The average task duration for computing 12,500 grid
        points using one core is 21 microseconds on Haswell'."""
        m = model(cores=1)
        ns = m.compute_ns(12_500, active_cores=1, idle_cores=0, jitter=False)
        assert 14_000 < ns < 30_000

    def test_phi_12500_points_near_1_1ms_single_core(self):
        """...'and 1.1 milliseconds on the Xeon Phi'."""
        m = model(platform=XEON_PHI, cores=1)
        ns = m.compute_ns(12_500, active_cores=1, idle_cores=0, jitter=False)
        assert 0.8e6 < ns < 1.6e6
