"""The PF4xx invariant objects: catalogue wiring, verdicts, legacy text."""

import pytest

from repro.analysis.findings import RULES, Severity
from repro.counters.registry import CounterSnapshot
from repro.dist.runtime import DistRunResult
from repro.runtime.runtime import RunResult
from repro.verify.invariants import (
    ADMISSION_CONSERVED,
    ANALYSIS_CLEAN,
    DEPENDENCY_ORDER_CONSERVED,
    INVARIANTS,
    PARCELS_CONSERVED,
    RERUN_IDENTICAL,
    SPILL_CONSERVED,
    TASKS_CONSERVED,
)


def _snapshot(values=None):
    return CounterSnapshot(timestamp_ns=0, values=values or {}, average_pairs={})


def _dist_result(**overrides) -> DistRunResult:
    base = dict(
        execution_time_ns=1_000,
        counters=_snapshot(),
        per_locality=(_snapshot(),),
        platform_name="haswell",
        num_localities=1,
        cores_per_locality=2,
        tasks_executed=4,
        parcels_sent=0,
        parcels_received=0,
        bytes_sent=0,
        serialization_time_ns=0,
        network_wait_ns=0,
        agas_cache_hits=0,
        agas_cache_misses=0,
        total_exec_ns=0,
        total_mgmt_ns=0,
    )
    base.update(overrides)
    return DistRunResult(**base)


def _run_result(values=None, **overrides) -> RunResult:
    base = dict(
        execution_time_ns=1_000,
        counters=_snapshot(values),
        platform_name="haswell",
        num_cores=2,
        tasks_executed=4,
    )
    base.update(overrides)
    return RunResult(**base)


# -- catalogue wiring --------------------------------------------------------------


def test_every_invariant_rule_is_in_the_shared_catalogue():
    for inv in INVARIANTS.values():
        assert inv.rule_id in RULES
        assert RULES[inv.rule_id].severity is Severity.ERROR


def test_findings_resolve_severity_through_the_catalogue():
    findings = ADMISSION_CONSERVED.check(10, 4, 5)
    assert len(findings) == 1
    assert findings[0].rule_id == "PF404"
    assert findings[0].severity is Severity.ERROR


# -- PF401: parcel conservation ----------------------------------------------------


def test_parcels_conserved_holds_on_balanced_books():
    result = _dist_result(
        parcels_sent=7, parcels_retransmitted=2,
        parcels_received=6, parcels_dropped=2, duplicates_discarded=1,
    )
    assert PARCELS_CONSERVED.holds(result)
    assert PARCELS_CONSERVED.check(result) == []


def test_parcels_conserved_failure_text_is_the_legacy_text():
    """Regression: the shared invariant must raise the *identical* message
    the hand-rolled ``assert_parcels_conserved`` raised before extraction —
    both via ``require`` and via the method that now delegates to it."""
    result = _dist_result(
        parcels_sent=3, parcels_retransmitted=1,
        parcels_received=2, parcels_dropped=0, duplicates_discarded=0,
    )
    expected = (
        "parcel conservation violated: 3 sent + 1 retransmitted != "
        "2 received + 0 dropped + 0 duplicates discarded"
    )
    with pytest.raises(AssertionError) as via_invariant:
        PARCELS_CONSERVED.require(result)
    assert str(via_invariant.value) == expected
    with pytest.raises(AssertionError) as via_method:
        result.assert_parcels_conserved()
    assert str(via_method.value) == expected


# -- PF402 / PF403 -----------------------------------------------------------------


def test_tasks_conserved_verdicts():
    assert TASKS_CONSERVED.holds(12, 0, 12)
    assert "never became ready" in TASKS_CONSERVED.check(12, 3, 9)[0].message
    assert "executed 13" in TASKS_CONSERVED.check(12, 0, 13)[0].message


def test_dependency_order_verdicts():
    assert DEPENDENCY_ORDER_CONSERVED.holds(0xAB, 0xAB)
    found = DEPENDENCY_ORDER_CONSERVED.check(0xAB, 0xAC, backend="thread")
    assert found[0].rule_id == "PF403"
    assert "thread" in found[0].message


# -- PF404: counter identities -----------------------------------------------------


def test_admission_conserved_verdicts():
    assert ADMISSION_CONSERVED.holds(10, 7, 3)
    assert not ADMISSION_CONSERVED.holds(10, 7, 2)


def test_spill_conserved_reads_the_overload_counters():
    good = _run_result(
        {"/overload/count/spilled": 4.0, "/overload/count/readmitted": 4.0}
    )
    bad = _run_result(
        {"/overload/count/spilled": 4.0, "/overload/count/readmitted": 3.0}
    )
    assert SPILL_CONSERVED.holds(good)
    assert "spill conservation violated" in SPILL_CONSERVED.check(bad)[0].message


# -- PF405 / PF406 -----------------------------------------------------------------


def test_analysis_clean_passes_none_through():
    assert ANALYSIS_CLEAN.holds(None)
    assert "DC301" in ANALYSIS_CLEAN.check("DC301: leaked", backend="sim")[0].message


def test_rerun_identical_compares_time_then_counters():
    a = _run_result({"/threads/count/cumulative": 4.0})
    same = _run_result({"/threads/count/cumulative": 4.0})
    slower = _run_result(
        {"/threads/count/cumulative": 4.0}, execution_time_ns=2_000
    )
    other = _run_result({"/threads/count/cumulative": 5.0})
    assert RERUN_IDENTICAL.holds(a, same)
    assert "execution time" in RERUN_IDENTICAL.check(a, slower)[0].message
    assert "counters differ" in RERUN_IDENTICAL.check(a, other)[0].message
