"""Unit tests for repro.qos.arrivals — deterministic open-loop generators."""

import pytest

from repro.qos.arrivals import BurstyArrivals, DiurnalArrivals, PoissonArrivals
from repro.util.stats import mean

WINDOW = 1_000_000  # 1 ms
GAP = 1_000.0  # mean interarrival: 1 us -> ~1000 arrivals per window

ALL = [
    PoissonArrivals(GAP),
    BurstyArrivals(GAP),
    DiurnalArrivals(GAP),
]


class TestCommonProperties:
    @pytest.mark.parametrize("proc", ALL, ids=lambda p: type(p).__name__)
    def test_deterministic_for_seed_and_tenant(self, proc):
        assert proc.times(7, 0, WINDOW) == proc.times(7, 0, WINDOW)

    @pytest.mark.parametrize("proc", ALL, ids=lambda p: type(p).__name__)
    def test_seed_and_tenant_change_the_schedule(self, proc):
        base = proc.times(7, 0, WINDOW)
        assert proc.times(8, 0, WINDOW) != base
        assert proc.times(7, 1, WINDOW) != base

    @pytest.mark.parametrize("proc", ALL, ids=lambda p: type(p).__name__)
    def test_strictly_increasing_ints_inside_window(self, proc):
        ts = proc.times(3, 0, WINDOW)
        assert all(isinstance(t, int) for t in ts)
        assert all(0 <= t < WINDOW for t in ts)
        assert all(b > a for a, b in zip(ts, ts[1:]))

    @pytest.mark.parametrize("proc", ALL, ids=lambda p: type(p).__name__)
    def test_mean_rate_is_roughly_the_configured_one(self, proc):
        # ~1000 expected arrivals; allow wide statistical slack.
        n = len(proc.times(11, 0, WINDOW))
        assert 600 <= n <= 1500

    @pytest.mark.parametrize("proc", ALL, ids=lambda p: type(p).__name__)
    def test_scaled_changes_the_rate(self, proc):
        base = len(proc.times(5, 0, WINDOW))
        doubled = len(proc.scaled(2.0).times(5, 0, WINDOW))
        assert 1.5 * base <= doubled <= 2.6 * base

    @pytest.mark.parametrize("proc", ALL, ids=lambda p: type(p).__name__)
    def test_bad_window_rejected(self, proc):
        with pytest.raises(ValueError):
            proc.times(0, 0, 0)

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(GAP).scaled(0.0)


class TestValidation:
    def test_poisson_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)

    def test_bursty_rejects_bad_on_fraction(self):
        with pytest.raises(ValueError):
            BurstyArrivals(GAP, on_fraction=0.0)
        with pytest.raises(ValueError):
            BurstyArrivals(GAP, on_fraction=1.0)

    def test_bursty_rejects_bad_burst(self):
        with pytest.raises(ValueError):
            BurstyArrivals(GAP, burst_ns=0.0)

    def test_diurnal_rejects_bad_amplitude(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(GAP, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(GAP, amplitude=-0.1)

    def test_diurnal_rejects_bad_period(self):
        with pytest.raises(ValueError):
            DiurnalArrivals(GAP, period_ns=0.0)


class TestShapes:
    def test_bursty_gaps_are_burstier_than_poisson(self):
        # Squared-CV of interarrival gaps: ~1 for Poisson, > 1 for MMPP.
        def scv(ts):
            gaps = [b - a for a, b in zip(ts, ts[1:])]
            m = mean(gaps)
            var = mean([(g - m) ** 2 for g in gaps])
            return var / (m * m)

        poisson = scv(PoissonArrivals(GAP).times(13, 0, WINDOW))
        bursty = scv(BurstyArrivals(GAP).times(13, 0, WINDOW))
        assert bursty > 1.5 * poisson

    def test_diurnal_rate_tracks_the_sine(self):
        # First half-period is above-mean rate, second below (sin >= 0
        # then <= 0): the first half must hold more arrivals.
        proc = DiurnalArrivals(GAP, period_ns=float(WINDOW), amplitude=0.9)
        ts = proc.times(17, 0, WINDOW)
        first = sum(1 for t in ts if t < WINDOW // 2)
        second = len(ts) - first
        assert first > 1.3 * second

    def test_poisson_mean_gap(self):
        ts = PoissonArrivals(GAP).times(19, 0, WINDOW)
        gaps = [b - a for a, b in zip(ts, ts[1:])]
        assert GAP * 0.8 <= mean(gaps) <= GAP * 1.2
