"""Unit tests for the BENCH_<rev>.json benchmark log."""

import json

import pytest

from repro.experiments import benchlog


@pytest.fixture(autouse=True)
def _isolated_records():
    benchlog.reset()
    yield
    benchlog.reset()


class TestRecord:
    def test_record_accumulates_and_rounds(self):
        rec = benchlog.record("figQ", wall_s=1.23456789, tasks=420)
        assert rec.wall_s == 1.2346
        assert rec.tasks == 420
        assert rec.scale == "bench"
        assert benchlog.RECORDS == [rec]

    def test_reset_clears(self):
        benchlog.record("fig3", 0.5, 10)
        benchlog.reset()
        assert benchlog.RECORDS == []


class TestWrite:
    def test_nothing_recorded_writes_nothing(self, tmp_path):
        assert benchlog.write(tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_file_name_and_payload(self, tmp_path):
        benchlog.record("figQ", 2.0, 300, scale="smoke")
        benchlog.record("fig3", 1.0, 100)
        path = benchlog.write(tmp_path, revision="abc1234")
        assert path == tmp_path / "BENCH_abc1234.json"
        data = json.loads(path.read_text())
        assert data["revision"] == "abc1234"
        # records sorted by experiment name
        assert [r["experiment"] for r in data["records"]] == ["fig3", "figQ"]
        assert data["total_wall_s"] == 3.0
        assert data["total_tasks"] == 400
        assert data["records"][1]["scale"] == "smoke"

    def test_default_revision_comes_from_git(self, tmp_path):
        benchlog.record("figO", 1.0, 50)
        path = benchlog.write(tmp_path)  # tmp_path is not a git checkout
        assert path.name == "BENCH_unknown.json"

    def test_coverage_pins_missing_experiments(self, tmp_path):
        benchlog.record("figH", 1.0, 10)
        benchlog.record("figC", 1.0, 10)
        path = benchlog.write(
            tmp_path, revision="r", registered=["figC", "figH", "figQ"]
        )
        data = json.loads(path.read_text())
        assert data["experiments"] == ["figC", "figH"]
        assert data["missing"] == ["figQ"]

    def test_full_coverage_has_no_missing(self, tmp_path):
        benchlog.record("figH", 1.0, 10)
        path = benchlog.write(tmp_path, revision="r", registered=["figH"])
        data = json.loads(path.read_text())
        assert data["missing"] == []

    def test_default_registry_is_the_cli_registry(self, tmp_path):
        from repro.experiments.cli import EXPERIMENT_MODULES

        for name in EXPERIMENT_MODULES:
            benchlog.record(name, 0.1, 1)
        path = benchlog.write(tmp_path, revision="r")
        data = json.loads(path.read_text())
        assert data["missing"] == []
        assert data["experiments"] == sorted(EXPERIMENT_MODULES)

    def test_every_registered_experiment_has_a_benchmark_module(self):
        """Coverage drift gate: a figure registered in the CLI without a
        ``benchmarks/bench_*`` file would silently fall out of the
        ``make bench`` trail."""
        from pathlib import Path

        from repro.experiments.cli import EXPERIMENT_MODULES

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        sources = " ".join(
            p.read_text() for p in bench_dir.glob("bench_*.py")
        )
        for name, module in EXPERIMENT_MODULES.items():
            assert module.rsplit(".", 1)[-1] in sources, (
                f"experiment {name!r} ({module}) has no benchmark in "
                "benchmarks/ — make bench would not record it"
            )


def _payload(**walls):
    return {
        "revision": "test",
        "records": [
            {"experiment": name, "wall_s": wall, "tasks": 1, "scale": "bench"}
            for name, wall in walls.items()
        ],
    }


class TestCompare:
    def test_within_threshold_is_ok(self):
        result = benchlog.compare(
            _payload(figC=1.0, figQ=2.0), _payload(figC=1.2, figQ=1.9)
        )
        assert result.ok
        assert result.regressions == ()

    def test_regression_above_threshold_fails(self):
        result = benchlog.compare(_payload(figC=1.0), _payload(figC=1.3))
        assert not result.ok
        assert [r.experiment for r in result.regressions] == ["figC"]
        assert result.rows[0].ratio == pytest.approx(1.3)

    def test_exactly_at_threshold_is_ok(self):
        result = benchlog.compare(_payload(figC=1.0), _payload(figC=1.25))
        assert result.ok

    def test_custom_threshold(self):
        result = benchlog.compare(
            _payload(figC=1.0), _payload(figC=1.2), threshold=0.1
        )
        assert not result.ok

    def test_new_and_retired_experiments_never_regress(self):
        result = benchlog.compare(
            _payload(figOld=1.0), _payload(figNew=100.0)
        )
        assert result.ok
        by_name = {r.experiment: r for r in result.rows}
        assert by_name["figNew"].old_wall_s is None
        assert by_name["figOld"].new_wall_s is None
        assert by_name["figNew"].ratio is None

    def test_duplicate_records_accumulate(self):
        old = {
            "records": [
                {"experiment": "figC", "wall_s": 0.5, "tasks": 1, "scale": "bench"},
                {"experiment": "figC", "wall_s": 0.5, "tasks": 1, "scale": "bench"},
            ]
        }
        result = benchlog.compare(old, _payload(figC=1.0))
        assert result.rows[0].old_wall_s == pytest.approx(1.0)
        assert result.ok

    def test_zero_old_wall_never_divides(self):
        result = benchlog.compare(_payload(figC=0.0), _payload(figC=1.0))
        assert result.rows[0].ratio is None
        assert result.ok

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            benchlog.compare(_payload(), _payload(), threshold=-0.1)

    def test_table_names_the_regression(self):
        result = benchlog.compare(
            _payload(figC=1.0, figQ=1.0), _payload(figC=2.0, figQ=1.0)
        )
        table = benchlog.format_table(result)
        assert "REGRESSED" in table
        assert "figC" in table and "figQ" in table
        assert "1 regression(s) above 25%: figC" in table

    def test_clean_table_says_so(self):
        table = benchlog.format_table(
            benchlog.compare(_payload(figC=1.0), _payload(figC=1.0))
        )
        assert "no wall-time regression above 25%" in table


class TestCompareCli:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return path

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _payload(figC=1.0))
        new = self._write(tmp_path, "new.json", _payload(figC=1.1))
        assert benchlog.main(["compare", str(old), str(new)]) == 0
        assert "figC" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        old = self._write(tmp_path, "old.json", _payload(figC=1.0))
        new = self._write(tmp_path, "new.json", _payload(figC=2.0))
        assert benchlog.main(["compare", str(old), str(new)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        old = self._write(tmp_path, "old.json", _payload(figC=1.0))
        new = self._write(tmp_path, "new.json", _payload(figC=1.4))
        assert benchlog.main(
            ["compare", str(old), str(new), "--threshold", "0.5"]
        ) == 0


class TestGitRevision:
    def test_outside_a_checkout_is_unknown(self, tmp_path):
        assert benchlog.git_revision(tmp_path) == "unknown"

    def test_inside_this_checkout_is_short_hex(self):
        rev = benchlog.git_revision(".")
        base = rev.removesuffix("-dirty")
        assert rev == "unknown" or (4 <= len(base) <= 16 and base.isalnum())

    @staticmethod
    def _init_repo(tmp_path):
        import subprocess

        def git(*args):
            subprocess.run(
                ["git", *args], cwd=tmp_path, check=True,
                capture_output=True,
                env={
                    "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
                    "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
                    "HOME": str(tmp_path), "PATH": "/usr/bin:/bin:/usr/local/bin",
                },
            )

        git("init", "-q")
        (tmp_path / "f.txt").write_text("x\n")
        git("add", "f.txt")
        git("commit", "-q", "-m", "seed")
        return git

    def test_clean_checkout_has_no_dirty_suffix(self, tmp_path):
        self._init_repo(tmp_path)
        rev = benchlog.git_revision(tmp_path)
        assert rev != "unknown"
        assert not rev.endswith("-dirty")

    def test_dirty_checkout_is_stamped(self, tmp_path):
        self._init_repo(tmp_path)
        clean = benchlog.git_revision(tmp_path)
        (tmp_path / "f.txt").write_text("edited\n")
        assert benchlog.git_revision(tmp_path) == f"{clean}-dirty"

    def test_emission_time_stamping_follows_head(self, tmp_path):
        """The revision is read when write() runs, not cached earlier."""
        git = self._init_repo(tmp_path)
        first = benchlog.git_revision(tmp_path)
        (tmp_path / "f.txt").write_text("second\n")
        git("commit", "-q", "-am", "second")
        second = benchlog.git_revision(tmp_path)
        benchlog.record("figH", 1.0, 1)
        path = benchlog.write(tmp_path)
        assert path is not None
        assert first not in path.name
        assert path.name == f"BENCH_{second}.json"
