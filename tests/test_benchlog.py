"""Unit tests for the BENCH_<rev>.json benchmark log."""

import json

import pytest

from repro.experiments import benchlog


@pytest.fixture(autouse=True)
def _isolated_records():
    benchlog.reset()
    yield
    benchlog.reset()


class TestRecord:
    def test_record_accumulates_and_rounds(self):
        rec = benchlog.record("figQ", wall_s=1.23456789, tasks=420)
        assert rec.wall_s == 1.2346
        assert rec.tasks == 420
        assert rec.scale == "bench"
        assert benchlog.RECORDS == [rec]

    def test_reset_clears(self):
        benchlog.record("fig3", 0.5, 10)
        benchlog.reset()
        assert benchlog.RECORDS == []


class TestWrite:
    def test_nothing_recorded_writes_nothing(self, tmp_path):
        assert benchlog.write(tmp_path) is None
        assert list(tmp_path.iterdir()) == []

    def test_file_name_and_payload(self, tmp_path):
        benchlog.record("figQ", 2.0, 300, scale="smoke")
        benchlog.record("fig3", 1.0, 100)
        path = benchlog.write(tmp_path, revision="abc1234")
        assert path == tmp_path / "BENCH_abc1234.json"
        data = json.loads(path.read_text())
        assert data["revision"] == "abc1234"
        # records sorted by experiment name
        assert [r["experiment"] for r in data["records"]] == ["fig3", "figQ"]
        assert data["total_wall_s"] == 3.0
        assert data["total_tasks"] == 400
        assert data["records"][1]["scale"] == "smoke"

    def test_default_revision_comes_from_git(self, tmp_path):
        benchlog.record("figO", 1.0, 50)
        path = benchlog.write(tmp_path)  # tmp_path is not a git checkout
        assert path.name == "BENCH_unknown.json"


class TestGitRevision:
    def test_outside_a_checkout_is_unknown(self, tmp_path):
        assert benchlog.git_revision(tmp_path) == "unknown"

    def test_inside_this_checkout_is_short_hex(self):
        rev = benchlog.git_revision(".")
        assert rev == "unknown" or (4 <= len(rev) <= 16 and rev.isalnum())
