"""Unit tests for the experiment harness: scales, shape checks, reporting."""

import pytest

from repro.experiments.config import SCALES, get_scale
from repro.experiments.harness import (
    check_high_at_fine_end,
    check_monotone_increase,
    check_negative_tail,
    check_tracks,
    check_u_shape,
    sweep_for,
)
from repro.experiments.report import FigureResult, Series


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "bench", "default", "paper"}

    def test_paper_scale_matches_paper(self):
        paper = get_scale("paper")
        assert paper.total_points == 100_000_000
        assert paper.time_steps == 50
        assert paper.phi_time_steps == 5
        assert paper.repetitions == 10
        assert paper.finest_partition == 160

    def test_phi_gets_fewer_steps(self):
        scale = get_scale("bench")
        assert scale.time_steps_for("xeon-phi") == scale.phi_time_steps
        assert scale.time_steps_for("haswell") == scale.time_steps

    def test_with_override(self):
        scale = get_scale("smoke").with_(repetitions=5)
        assert scale.repetitions == 5
        assert scale.total_points == get_scale("smoke").total_points

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_sweep_for_ends_at_total(self):
        scale = get_scale("smoke")
        sweep = sweep_for(scale)
        assert sweep[-1] == scale.total_points
        assert sweep[0] == scale.finest_partition


class TestUShapeCheck:
    def test_accepts_u(self):
        pts = [(1, 10.0), (10, 2.0), (100, 1.0), (1000, 3.0)]
        assert check_u_shape(pts, "x") == []

    def test_rejects_monotone_decreasing(self):
        pts = [(1, 10.0), (10, 5.0), (100, 1.0)]
        problems = check_u_shape(pts, "x")
        assert any("coarse-grained wall" in p for p in problems)

    def test_rejects_monotone_increasing(self):
        pts = [(1, 1.0), (10, 5.0), (100, 10.0)]
        problems = check_u_shape(pts, "x")
        assert any("fine-grained wall" in p for p in problems)

    def test_rejects_minimum_at_boundary(self):
        pts = [(1, 1.0), (10, 5.0), (100, 10.0)]
        assert any("boundary" in p or "wall" in p for p in check_u_shape(pts, "x"))

    def test_too_few_points(self):
        assert check_u_shape([(1, 1.0)], "x")


class TestOtherChecks:
    def test_high_at_fine_end(self):
        assert check_high_at_fine_end([(1, 0.9), (10, 0.1)], "x", floor=0.5) == []
        assert check_high_at_fine_end([(1, 0.3)], "x", floor=0.5)

    def test_monotone_increase(self):
        assert check_monotone_increase([(1, 1.0), (2, 2.0), (3, 3.0)], "x") == []
        assert check_monotone_increase([(1, 3.0), (2, 1.0)], "x")

    def test_monotone_increase_allows_slack(self):
        pts = [(1, 1.0), (2, 0.97)]  # 3% dip within 5% slack
        assert check_monotone_increase(pts, "x", slack=0.05) == []

    def test_negative_tail(self):
        assert check_negative_tail([(1, 5.0), (2, -1.0)], "x") == []
        assert check_negative_tail([(1, -5.0), (2, 1.0)], "x")
        assert check_negative_tail([], "x")

    def test_tracks_correlated(self):
        a = [(x, float(x)) for x in range(10)]
        b = [(x, float(x) * 2 + 1) for x in range(10)]
        assert check_tracks(a, b, "x") == []

    def test_tracks_anticorrelated(self):
        a = [(x, float(x)) for x in range(10)]
        b = [(x, float(10 - x)) for x in range(10)]
        assert check_tracks(a, b, "x")

    def test_tracks_requires_shared_points(self):
        a = [(x, 1.0) for x in range(3)]
        b = [(x + 100, 1.0) for x in range(3)]
        assert check_tracks(a, b, "x")


class TestFigureResult:
    def make_fig(self):
        fig = FigureResult(
            figure_id="figX",
            title="Test figure",
            xlabel="grain",
            ylabel="seconds",
        )
        fig.add_series("panel A", Series("s1", [(1.0, 2.0), (10.0, 3.0)]))
        fig.add_series("panel A", Series("s2", [(1.0, 5.0)]))
        fig.notes.append("a note")
        return fig

    def test_render_contains_everything(self):
        text = self.make_fig().render()
        assert "figX" in text
        assert "panel A" in text
        assert "s1" in text and "s2" in text
        assert "a note" in text

    def test_render_plots_toggle(self):
        with_plots = self.make_fig().render(plots=True)
        without = self.make_fig().render(plots=False)
        assert "legend:" in with_plots
        assert "legend:" not in without

    def test_table_merges_x_values(self):
        text = self.make_fig().render(plots=False)
        # x=1 row has both series; x=10 row has s1 only (blank cell).
        assert "2" in text and "5" in text and "3" in text

    def test_markdown_sections(self):
        md = self.make_fig().to_markdown()
        assert md.startswith("### figX")
        assert "```" in md
        assert "- a note" in md
