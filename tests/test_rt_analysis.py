"""The RTA schedulability oracle, cross-checked against measured misses.

The point of :mod:`repro.rt.analysis` is that its claims are *testable
against the simulator*: RTA-schedulable task sets must show zero misses
when actually run (`run_rt_service`, rate-monotonic priorities, one
core), and sets the oracle proves infeasible (raw utilization above the
core count) must miss.  Both directions are asserted here at smoke
scale, including against the figE task set itself.
"""

import math

import pytest

from repro.experiments.figE_rt_deadline import VALLEY_GRAIN_NS
from repro.experiments.figE_rt_deadline import taskset as figE_taskset
from repro.rt import (
    INFEASIBLE,
    SCHEDULABLE,
    UNKNOWN,
    PeriodicTaskSpec,
    RtServiceConfig,
    SporadicTaskSpec,
    TaskSet,
    response_time,
    rta,
    run_rt_service,
)


def light_taskset(seed: int = 7) -> TaskSet:
    """A comfortably schedulable 1-core set (raw utilization ~0.27).

    Same ingredients as figE — an urgent sporadic controller sharing a
    bus with a LOW periodic logger, plus a NORMAL spinner — scaled so
    the response-time fixpoints land well inside the deadlines even
    with per-chunk overhead priced in.
    """
    return TaskSet(
        tasks=(
            SporadicTaskSpec(
                name="ctrl",
                wcet_ns=12_000,
                relative_deadline_ns=60_000,
                min_separation_ns=120_000,
                resource="bus",
                critical_section_ns=4_000,
            ),
            PeriodicTaskSpec(
                name="spin",
                wcet_ns=30_000,
                relative_deadline_ns=240_000,
                period_ns=240_000,
                exec_variation=0.1,
                release_jitter_ns=2_000,
            ),
            PeriodicTaskSpec(
                name="logger",
                wcet_ns=20_000,
                relative_deadline_ns=480_000,
                period_ns=480_000,
                phase_ns=6_000,
                resource="bus",
                critical_section_ns=8_000,
            ),
        ),
        seed=seed,
    )


def overload_taskset() -> TaskSet:
    """Raw utilization 1.2 on one core; zero exec variation, so the
    measured demand equals the WCET and the backlog growth is certain."""
    return TaskSet(
        tasks=(
            PeriodicTaskSpec(
                name="a",
                wcet_ns=60_000,
                relative_deadline_ns=100_000,
                period_ns=100_000,
            ),
            PeriodicTaskSpec(
                name="b",
                wcet_ns=60_000,
                relative_deadline_ns=100_000,
                period_ns=100_000,
                phase_ns=1_000,
            ),
        ),
        seed=5,
    ).with_grain(8_000)


class TestResponseTime:
    def test_textbook_fixpoint(self):
        # Joseph & Pandya's classic: C=(1,2,3), T=(4,6,-), R3 = 10.
        r = response_time(3, 0, 12, [(1, 4, 0), (2, 6, 0)])
        assert r == 10

    def test_no_interference_is_demand_plus_blocking(self):
        assert response_time(5, 2, 100, []) == 7

    def test_deadline_overshoot_is_inf(self):
        assert response_time(3, 0, 9, [(1, 4, 0), (2, 6, 0)]) == math.inf

    def test_infinite_blocking_is_inf(self):
        assert response_time(1, math.inf, 1_000_000, []) == math.inf

    def test_jitter_raises_interference(self):
        base = response_time(3, 0, 50, [(2, 10, 0)])
        jittered = response_time(3, 0, 50, [(2, 10, 6)])
        assert jittered > base


class TestRtaValidation:
    def test_bad_protocol_rejected(self):
        with pytest.raises(ValueError, match="protocol"):
            rta(light_taskset(), protocol="magic")

    def test_bad_cores_rejected(self):
        with pytest.raises(ValueError, match="num_cores"):
            rta(light_taskset(), num_cores=0)

    def test_bad_overhead_rejected(self):
        with pytest.raises(ValueError, match="overhead_factor"):
            rta(light_taskset(), overhead_factor=0.0)

    def test_bad_margin_rejected(self):
        with pytest.raises(ValueError, match="margin"):
            rta(light_taskset(), margin=-0.1)


class TestRtaVerdicts:
    def test_light_set_is_schedulable(self):
        result = rta(light_taskset().with_grain(8_000), num_cores=1)
        assert result.verdict == SCHEDULABLE
        assert result.schedulable
        assert all(e.response_ns <= e.deadline_ns for e in result.tasks)

    def test_overload_is_infeasible(self):
        result = rta(overload_taskset(), num_cores=1)
        assert result.verdict == INFEASIBLE
        assert result.utilization > 1.0
        assert not result.schedulable

    def test_multicore_is_unknown(self):
        result = rta(light_taskset().with_grain(8_000), num_cores=2)
        assert result.verdict == UNKNOWN

    def test_none_protocol_blocking_is_unbounded(self):
        # ctrl shares the bus with the LOW logger: under 'none' the
        # holder can be starved indefinitely, so ctrl is unschedulable.
        result = rta(
            light_taskset().with_grain(8_000), num_cores=1, protocol="none"
        )
        assert result.verdict == UNKNOWN
        assert result.task("ctrl").blocking_ns == math.inf
        assert not result.task("ctrl").schedulable
        # The LOW logger itself blocks on nobody and stays schedulable.
        assert result.task("logger").schedulable

    def test_ceiling_blocks_no_longer_than_inheritance(self):
        ts = light_taskset().with_grain(8_000)
        inherit = rta(ts, num_cores=1, protocol="inherit")
        ceiling = rta(ts, num_cores=1, protocol="ceiling")
        for name in ("ctrl", "spin", "logger"):
            assert (
                ceiling.task(name).blocking_ns
                <= inherit.task(name).blocking_ns
            )

    def test_finer_grain_inflates_demand(self):
        # The fine-grain wall inside the analysis: every chunk pays the
        # management overhead, so inflated utilization is monotone
        # non-increasing in grain.
        ts = light_taskset()
        inflated = [
            rta(ts.with_grain(g), num_cores=1).inflated_utilization
            for g in (1_000, 4_000, 16_000, None)
        ]
        assert inflated == sorted(inflated, reverse=True)
        chunk_counts = [
            rta(ts.with_grain(g), num_cores=1).task("spin").chunks
            for g in (1_000, 4_000, 16_000, None)
        ]
        assert chunk_counts == sorted(chunk_counts, reverse=True)
        assert chunk_counts[-1] == 1

    def test_unknown_task_name_raises(self):
        result = rta(light_taskset(), num_cores=1)
        with pytest.raises(KeyError, match="nope"):
            result.task("nope")


class TestMeasuredCrossCheck:
    """The oracle against real `run_rt_service` miss sets (smoke scale)."""

    WINDOW_NS = 1_200_000

    def _measure(self, ts, protocol="inherit"):
        return run_rt_service(
            ts,
            RtServiceConfig(
                num_cores=1,
                seed=1,
                window_ns=self.WINDOW_NS,
                protocol=protocol,
                scheduler="rm",
            ),
        )

    @pytest.mark.parametrize("grain", [4_000, 16_000, None])
    @pytest.mark.parametrize("protocol", ["inherit", "ceiling"])
    def test_schedulable_implies_zero_misses(self, grain, protocol):
        ts = light_taskset().with_grain(grain)
        result = rta(ts, num_cores=1, protocol=protocol)
        assert result.verdict == SCHEDULABLE
        out = self._measure(ts, protocol)
        assert out.released() > 0
        assert out.missed() == 0
        assert out.conserved()

    def test_infeasible_overload_misses(self):
        ts = overload_taskset()
        result = rta(ts, num_cores=1)
        assert result.verdict == INFEASIBLE
        out = self._measure(ts)
        assert out.missed() > 0

    def test_figE_taskset_is_infeasible_on_one_core_and_misses(self):
        # The figE set (utilization ~1.55) needs both of its cores; on
        # one core the oracle proves overload and the measured run
        # misses — the oracle and the figure agree about *why* figE
        # uses two cores.
        ts = figE_taskset().with_grain(VALLEY_GRAIN_NS)
        result = rta(ts, num_cores=1, protocol="inherit")
        assert result.verdict == INFEASIBLE
        out = self._measure(ts)
        assert out.missed() > 0

    def test_oracle_is_pure_analysis(self):
        # Same inputs, same arithmetic — no hidden state or clocks.
        ts = light_taskset().with_grain(8_000)
        first = rta(ts, num_cores=1)
        second = rta(ts, num_cores=1)
        assert first == second
