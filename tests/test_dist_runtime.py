"""Integration tests for DistRuntime (repro.dist.runtime)."""

import pytest

from repro.apps.stencil1d import StencilConfig, run_stencil
from repro.apps.stencil1d_dist import DistStencilConfig, run_dist_stencil
from repro.dist import DistConfig, DistRuntime, NetworkModel
from repro.runtime.future import Future
from repro.runtime.runtime import RuntimeConfig
from repro.runtime.sim_executor import DeadlockError
from repro.runtime.work import FixedWork


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            DistConfig(num_localities=0)
        with pytest.raises(ValueError):
            DistConfig(cores_per_locality=0)
        with pytest.raises(ValueError):
            DistConfig(dist_task_overhead_frac=-0.1)

    def test_single_locality_platform_is_unscaled(self):
        config = DistConfig(num_localities=1, platform="haswell")
        from repro.sim.platforms import get_platform

        assert config.resolve_platform() == get_platform("haswell")

    def test_distributed_overhead_scales_with_log_localities(self):
        from repro.sim.platforms import get_platform

        base = get_platform("haswell").costs.task_overhead_ns
        config = DistConfig(
            num_localities=4, platform="haswell", dist_task_overhead_frac=0.5
        )
        # 1 + 0.5 * log2(4) = 2.0
        assert config.resolve_platform().costs.task_overhead_ns == 2.0 * base


class TestSingleNodeEquivalence:
    def test_one_locality_zero_network_matches_runtime_within_1pct(self):
        stencil = dict(total_points=1 << 16, partition_points=2_048, time_steps=4)
        single = run_stencil(
            RuntimeConfig(platform="haswell", num_cores=8, seed=11),
            StencilConfig(**stencil),
        ).result
        dist = run_dist_stencil(
            DistConfig(
                num_localities=1,
                cores_per_locality=8,
                seed=11,
                network=NetworkModel.zero(),
            ),
            DistStencilConfig(**stencil),
        ).result
        assert dist.parcels_sent == 0
        assert dist.tasks_executed == single.tasks_executed
        rel = abs(dist.execution_time_ns - single.execution_time_ns) / (
            single.execution_time_ns
        )
        assert rel <= 0.01, (
            f"1-locality distributed run diverged {rel:.2%} from the "
            "single-node runtime"
        )


class TestCrossLocalityDataflow:
    def test_value_ships_between_localities(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)
        src = dist.async_(lambda: 21, locality=0, work=FixedWork(1_000))
        dst = dist.dataflow(
            lambda x: 2 * x, [src], locality=1, work=FixedWork(1_000)
        )
        result = dist.run()
        assert dst.value == 42
        assert result.parcels_sent == 1
        assert result.parcels_received == 1
        # The parcel charged serialization and was in flight a while.
        assert result.serialization_time_ns > 0
        assert result.network_wait_ns > 0

    def test_same_locality_dependency_stays_local(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)
        src = dist.async_(lambda: 1, locality=1, work=FixedWork(1_000))
        dist.dataflow(lambda x: x, [src], locality=1, work=FixedWork(1_000))
        result = dist.run()
        assert result.parcels_sent == 0

    def test_proxies_are_shared_per_destination(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)
        src = dist.async_(lambda: 5, locality=0, work=FixedWork(1_000))
        consumers = [
            dist.dataflow(lambda x, i=i: x + i, [src], locality=1,
                          work=FixedWork(1_000))
            for i in range(3)
        ]
        result = dist.run()
        assert [f.value for f in consumers] == [5, 6, 7]
        # Three consumers on one locality share a single parcel.
        assert result.parcels_sent == 1

    def test_distinct_transforms_ship_distinct_parcels(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)
        src = dist.make_ready_future((1, 2), locality=0)
        first = dist.remote_value(src, 1, transform=lambda v: v[0])
        second = dist.remote_value(src, 1, transform=lambda v: v[1])
        sink = dist.dataflow(
            lambda a, b: (a, b), [first, second], locality=1,
            work=FixedWork(1_000),
        )
        result = dist.run()
        assert sink.value == (1, 2)
        assert result.parcels_sent == 2

    def test_exception_propagates_through_parcel(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)

        def boom():
            raise RuntimeError("remote failure")

        src = dist.async_(boom, locality=0, work=FixedWork(1_000))
        proxy = dist.remote_value(src, 1)
        dist.run()
        assert proxy.has_exception
        with pytest.raises(RuntimeError, match="remote failure"):
            _ = proxy.value


class TestDormancyRestart:
    def test_idle_locality_wakes_for_late_parcel(self):
        # Locality 1 has nothing runnable until locality 0's value arrives
        # long after its workers have gone dormant.
        dist = DistRuntime(num_localities=2, cores_per_locality=2, seed=0)
        src = dist.async_(lambda: 9, locality=0, work=FixedWork(500_000))
        sink = dist.dataflow(
            lambda x: x * x, [src], locality=1, work=FixedWork(1_000)
        )
        result = dist.run()
        assert sink.value == 81
        assert result.parcels_sent == 1


class TestRunContract:
    def test_single_use(self):
        dist = DistRuntime(num_localities=1, cores_per_locality=1, seed=0)
        dist.async_(lambda: 1, work=FixedWork(100))
        dist.run()
        with pytest.raises(RuntimeError):
            dist.run()

    def test_deadlock_error_names_locality(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=1, seed=0)
        never_ready = Future("never")

        def stuck():
            yield never_ready

        from repro.runtime.task import Task

        dist.locality(1).runtime.spawn(Task(stuck, work=FixedWork(100)))
        with pytest.raises(DeadlockError, match="locality 1"):
            dist.run()

    def test_remote_value_requires_owned_future(self):
        dist = DistRuntime(num_localities=2, cores_per_locality=1, seed=0)
        with pytest.raises(ValueError):
            dist.remote_value(Future("stray"), 1)

    def test_counter_snapshots_per_locality(self):
        dist = DistRuntime(num_localities=3, cores_per_locality=2, seed=0)
        for loc in range(3):
            dist.async_(lambda: loc, locality=loc, work=FixedWork(1_000))
        result = dist.run()
        assert len(result.per_locality) == 3
        # Each locality executed its one task; the distributed registry's
        # mirrored thread counters agree with the per-locality views.
        assert result.tasks_executed == 3
        total = result.counters.get(
            "/threads{locality#1/total}/count/cumulative"
        )
        assert total == 1.0

    def test_idle_decomposition_bounded(self):
        result = run_dist_stencil(
            DistConfig(num_localities=2, cores_per_locality=4, seed=0),
            DistStencilConfig(
                total_points=1 << 16, partition_points=4_096, time_steps=3
            ),
        ).result
        assert 0.0 <= result.idle_rate <= 1.0
        assert 0.0 <= result.overhead_idle_rate <= 1.0
        assert 0.0 <= result.network_wait_rate <= 1.0
        assert result.network_wait_ns > 0
