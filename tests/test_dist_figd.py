"""figD acceptance tests: the claims are asserted, not just plotted."""

import pytest

from repro.experiments import figD_distributed_grain as figd
from repro.experiments.config import get_scale


@pytest.fixture(scope="module")
def smoke_figure():
    return figd.run(get_scale("smoke"))


class TestFigD:
    def test_shape_checks_pass_at_smoke_scale(self, smoke_figure):
        assert figd.shape_checks(smoke_figure) == []

    def test_best_grain_strictly_coarser_at_8_localities(self, smoke_figure):
        summary = next(
            panel for panel in smoke_figure.panels
            if panel.startswith("summary")
        )
        series = {
            s.label: dict(s.points) for s in smoke_figure.panels[summary]
        }
        best = series["best grain (points)"]
        assert best[8] > best[1], (
            f"best grain at 8 localities ({best[8]:.0f}) must be strictly "
            f"coarser than at 1 locality ({best[1]:.0f})"
        )

    def test_parcels_conserved_and_present(self, smoke_figure):
        summary = next(
            panel for panel in smoke_figure.panels
            if panel.startswith("summary")
        )
        series = {
            s.label: dict(s.points) for s in smoke_figure.panels[summary]
        }
        sent = series["parcels sent"]
        received = series["parcels received"]
        assert sent == received
        assert sent[1] == 0
        for loc in (2, 4, 8):
            assert sent[loc] > 0

    def test_registered_in_cli(self):
        from repro.experiments.cli import EXPERIMENT_MODULES, load_experiment

        assert "figD" in EXPERIMENT_MODULES
        assert load_experiment("figD") is figd

    def test_grain_sweep_leaves_a_partition_per_locality(self):
        scale = get_scale("smoke")
        grains = figd.grain_sweep(scale)
        assert grains == sorted(grains)
        coarsest = max(grains)
        assert scale.total_points // coarsest >= max(figd.LOCALITIES)
