"""Hypothesis property tests for the spec shrinker.

Three laws over the generator's whole corpus:

- **monotone** — every candidate, and every accepted step of a descent,
  strictly reduces ``spec_size`` (this is the termination argument);
- **terminates** — a descent takes at most ``size - 1`` accepted steps and
  never spins (pinned structurally, not with a timeout);
- **violation-preserving** — the shrunk spec still violates the predicate
  it was shrunk against, including a real harness-planted discrepancy.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.verify.shrink import shrink, shrink_candidates, spec_size
from repro.verify.spec import generate_spec

#: the same corpus the fuzz CLI draws from
specs = st.integers(min_value=0, max_value=5_000).map(generate_spec)


@given(specs)
@settings(max_examples=60, deadline=None)
def test_every_candidate_strictly_reduces_size(spec):
    base = spec_size(spec)
    for candidate in shrink_candidates(spec):
        assert spec_size(candidate) < base


@given(specs)
@settings(max_examples=60, deadline=None)
def test_candidates_are_always_valid_specs(spec):
    for candidate in shrink_candidates(spec):
        # __post_init__ already ran; re-serialize to prove self-description
        assert type(spec).from_json(candidate.to_json()) == candidate


@given(specs)
@settings(max_examples=40, deadline=None)
def test_descent_is_monotone_and_terminates(spec):
    # "always violating" forces the longest possible descent
    result = shrink(spec, lambda s: True)
    sizes = [spec_size(s) for s in result.trail]
    assert sizes == sorted(sizes, reverse=True)
    assert len(set(sizes)) == len(sizes)  # strictly decreasing
    assert result.steps <= spec_size(spec) - 1  # the termination bound
    assert spec_size(result.spec) == 1  # nothing blocks full descent
    assert result.spec.total_tasks == 1


@given(specs)
@settings(max_examples=40, deadline=None)
def test_shrunk_spec_still_violates_the_predicate(spec):
    # a family of predicates the descent must preserve while minimizing
    predicates = [
        lambda s: True,
        lambda s: s.width >= 1,
        lambda s: s.steps * s.width >= 2,
        lambda s: s.patterns[0] == spec.patterns[0],
    ]
    for violates in predicates:
        if not violates(spec):
            continue
        result = shrink(spec, violates)
        assert violates(result.spec)


@given(specs)
@settings(max_examples=30, deadline=None)
def test_descent_is_deterministic(spec):
    violates = lambda s: s.total_tasks >= 2  # noqa: E731
    if not violates(spec):
        return
    assert shrink(spec, violates) == shrink(spec, violates)


def test_shrinking_a_seeded_synthetic_discrepancy():
    """The harness-integrated version: the predicate is 'the planted
    divergence still reproduces', and it must survive minimization."""
    from repro.verify.harness import flip_fingerprint, verify_spec

    mutate = flip_fingerprint("thread")
    spec = generate_spec(17)
    violates = lambda s: not verify_spec(s, mutate=mutate).ok  # noqa: E731
    assert violates(spec)
    result = shrink(spec, violates)
    assert violates(result.spec)
    assert result.spec.total_tasks <= 4
    sizes = [spec_size(s) for s in result.trail]
    assert sizes == sorted(sizes, reverse=True) and len(set(sizes)) == len(sizes)
