"""Unit tests for futures, when_all, and dataflow composition."""

import pytest

from repro.runtime.future import (
    when_any,
    Future,
    FutureError,
    dataflow,
    make_ready_future,
    when_all,
)
from repro.runtime.task import Task
from repro.runtime.work import FixedWork, NoWork


class FakeSpawner:
    """Captures spawned tasks; optionally runs them immediately."""

    def __init__(self, run_immediately: bool = True):
        self.spawned: list[Task] = []
        self.run_immediately = run_immediately

    def spawn(self, task: Task) -> None:
        self.spawned.append(task)
        if self.run_immediately and task.fn is not None:
            task.fn()


class TestFuture:
    def test_not_ready_initially(self):
        f = Future("f")
        assert not f.is_ready
        assert not f.has_exception

    def test_set_and_read_value(self):
        f = Future()
        f.set_value(42)
        assert f.is_ready
        assert f.value == 42

    def test_reading_unready_raises(self):
        with pytest.raises(FutureError, match="not ready"):
            Future("f").value

    def test_double_set_raises(self):
        f = Future()
        f.set_value(1)
        with pytest.raises(FutureError, match="already satisfied"):
            f.set_value(2)

    def test_set_exception(self):
        f = Future()
        f.set_exception(ValueError("boom"))
        assert f.is_ready
        assert f.has_exception
        with pytest.raises(ValueError, match="boom"):
            f.value

    def test_exception_then_value_raises(self):
        f = Future()
        f.set_exception(ValueError("x"))
        with pytest.raises(FutureError):
            f.set_value(1)

    def test_callback_on_set(self):
        f = Future()
        seen = []
        f.on_ready(seen.append)
        f.set_value(5)
        assert seen == [f]

    def test_callback_immediate_when_already_ready(self):
        f = make_ready_future(1)
        seen = []
        f.on_ready(seen.append)
        assert seen == [f]

    def test_multiple_callbacks_in_order(self):
        f = Future()
        order = []
        f.on_ready(lambda _: order.append(1))
        f.on_ready(lambda _: order.append(2))
        f.set_value(None)
        assert order == [1, 2]

    def test_callbacks_fire_on_exception_too(self):
        f = Future()
        seen = []
        f.on_ready(seen.append)
        f.set_exception(RuntimeError("e"))
        assert seen == [f]

    def test_make_ready_future(self):
        f = make_ready_future("v", name="n")
        assert f.is_ready and f.value == "v" and f.name == "n"


class TestWhenAll:
    def test_empty_is_immediately_ready(self):
        f = when_all([])
        assert f.is_ready
        assert f.value == []

    def test_waits_for_all(self):
        a, b = Future("a"), Future("b")
        combined = when_all([a, b])
        a.set_value(1)
        assert not combined.is_ready
        b.set_value(2)
        assert combined.is_ready

    def test_value_is_list_of_futures(self):
        a, b = make_ready_future(1), make_ready_future(2)
        combined = when_all([a, b])
        assert combined.value == [a, b]
        assert [f.value for f in combined.value] == [1, 2]

    def test_duplicate_futures_counted_per_slot(self):
        # The stencil with one partition depends on the same future three
        # times; when_all must handle that.
        f = Future()
        combined = when_all([f, f, f])
        assert not combined.is_ready
        f.set_value(9)
        assert combined.is_ready
        assert combined.value == [f, f, f]

    def test_all_ready_inputs(self):
        combined = when_all([make_ready_future(i) for i in range(3)])
        assert combined.is_ready


class TestDataflow:
    def test_runs_on_dependency_values(self):
        spawner = FakeSpawner()
        a, b = make_ready_future(2), make_ready_future(3)
        result = dataflow(spawner, lambda x, y: x * y, [a, b])
        assert result.value == 6
        assert len(spawner.spawned) == 1

    def test_waits_for_dependencies(self):
        spawner = FakeSpawner()
        a = Future("a")
        result = dataflow(spawner, lambda x: x + 1, [a])
        assert not result.is_ready
        assert spawner.spawned == []
        a.set_value(10)
        assert result.value == 11

    def test_zero_dependencies_spawn_immediately(self):
        spawner = FakeSpawner()
        result = dataflow(spawner, lambda: "done", [])
        assert result.value == "done"

    def test_work_descriptor_attached(self):
        spawner = FakeSpawner(run_immediately=False)
        dataflow(
            spawner, lambda x: x, [make_ready_future(1)], work=FixedWork(500)
        )
        assert spawner.spawned[0].work == FixedWork(500)

    def test_default_work_is_nowork(self):
        spawner = FakeSpawner(run_immediately=False)
        dataflow(spawner, lambda x: x, [make_ready_future(1)])
        assert isinstance(spawner.spawned[0].work, NoWork)

    def test_body_exception_propagates_to_result(self):
        spawner = FakeSpawner()

        def bad(_x):
            raise KeyError("inner")

        result = dataflow(spawner, bad, [make_ready_future(1)])
        assert result.has_exception
        with pytest.raises(KeyError):
            result.value

    def test_dependency_exception_skips_body(self):
        spawner = FakeSpawner()
        failed = Future("failed")
        failed.set_exception(ValueError("dep"))
        calls = []
        result = dataflow(spawner, lambda x: calls.append(x), [failed])
        assert result.has_exception
        assert calls == []
        assert spawner.spawned == []  # task never created

    def test_chained_dataflow(self):
        spawner = FakeSpawner()
        a = Future("a")
        b = dataflow(spawner, lambda x: x + 1, [a])
        c = dataflow(spawner, lambda x: x * 2, [b])
        a.set_value(1)
        assert c.value == 4

    def test_name_defaults_to_fn_name(self):
        spawner = FakeSpawner(run_immediately=False)

        def my_kernel(x):
            return x

        result = dataflow(spawner, my_kernel, [make_ready_future(1)])
        assert result.name == "my_kernel"


class TestWhenAny:
    def test_requires_inputs(self):
        with pytest.raises(ValueError):
            when_any([])

    def test_first_ready_wins(self):
        from repro.runtime.future import when_any as wa

        a, b = Future("a"), Future("b")
        result = wa([a, b])
        b.set_value("b-value")
        assert result.is_ready
        index, winner = result.value
        assert index == 1 and winner is b
        a.set_value("late")  # must not disturb the result
        assert result.value[1] is b

    def test_already_ready_input(self):
        from repro.runtime.future import when_any as wa

        a = make_ready_future(1, "a")
        b = Future("b")
        index, winner = wa([a, b]).value
        assert index == 0 and winner is a

    def test_tie_broken_by_input_order(self):
        from repro.runtime.future import when_any as wa

        a, b = make_ready_future(1), make_ready_future(2)
        index, _ = wa([a, b]).value
        assert index == 0


class TestThen:
    def test_continuation_receives_future(self):
        from repro.runtime.future import then

        spawner = FakeSpawner()
        a = Future("a")
        cont = then(spawner, a, lambda f: f.value * 10)
        assert not cont.is_ready
        a.set_value(4)
        assert cont.value == 40

    def test_continuation_runs_on_failed_future(self):
        from repro.runtime.future import then

        spawner = FakeSpawner()
        a = Future("a")
        cont = then(
            spawner, a,
            lambda f: "recovered" if f.has_exception else "no error",
        )
        a.set_exception(RuntimeError("boom"))
        assert cont.value == "recovered"

    def test_continuation_exception_propagates(self):
        from repro.runtime.future import then

        spawner = FakeSpawner()
        cont = then(spawner, make_ready_future(1), lambda f: 1 / 0)
        assert cont.has_exception

    def test_runs_on_simulated_runtime(self):
        from repro.runtime.future import then
        from repro.runtime.runtime import Runtime
        from repro.runtime.work import FixedWork

        rt = Runtime(num_cores=2)
        a = rt.async_(lambda: 5, work=FixedWork(1_000))
        cont = then(rt, a, lambda f: f.value + 1, work=FixedWork(500))
        rt.run()
        assert cont.value == 6
