"""The differential harness: parity on clean specs, detection of planted bugs.

The acceptance story lives here: a synthetic semantic discrepancy planted
via the ``mutate`` hook is caught by the backend-divergence invariant,
shrunk to a <= 4-task reproducer, and replays deterministically.
"""

import pytest

from repro.verify.harness import (
    StructuralResult,
    expected_result,
    flip_fingerprint,
    run_sim,
    verify_spec,
)
from repro.verify.shrink import shrink, spec_size
from repro.verify.spec import WorkloadSpec, generate_spec

#: small fixed specs covering the interesting axes (fast: ~ms each)
CLEAN_SPECS = [
    WorkloadSpec(seed=1, patterns=("stencil_1d",), width=4, steps=3),
    WorkloadSpec(
        seed=2, patterns=("fft", "tree"), width=4, steps=3,
        use_priorities=True, scheduler="priority-local-lifo",
    ),
    WorkloadSpec(
        seed=3, patterns=("random_nearest",), width=4, steps=2,
        kernel="imbalanced", num_cores=4,
    ),
    WorkloadSpec(
        seed=4, patterns=("spread",), width=4, steps=2,
        num_localities=2, placement="cyclic",
        drop_rate=0.05, duplicate_rate=0.05,
    ),
]


@pytest.mark.parametrize("spec", CLEAN_SPECS, ids=lambda s: f"seed{s.seed}")
def test_clean_specs_pass_every_invariant(spec):
    report = verify_spec(spec)
    assert report.ok, [f.format() for f in report.findings]
    # the ladder ran every leg: sim, rerun, thread, dist@1 (+ dist@N)
    expected_backends = {"sim", "sim-rerun", "thread", "dist@1"}
    if spec.num_localities > 1:
        expected_backends.add(f"dist@{spec.num_localities}")
    assert expected_backends <= set(report.results)


def test_model_fingerprint_matches_the_sim_backend():
    spec = WorkloadSpec(seed=9, patterns=("stencil_1d_periodic",), width=4, steps=3)
    structural, _ = run_sim(spec)
    model = expected_result(spec)
    assert structural.fingerprint == model.fingerprint
    assert model.total_tasks == spec.total_tasks == structural.total_tasks


def test_dist_at_one_locality_is_bit_identical_to_runtime():
    """The DistRuntime@1 == Runtime equivalence the harness leans on:
    fingerprint, execution time, and every counter must match exactly."""
    from repro.verify.harness import run_dist

    spec = WorkloadSpec(seed=11, patterns=("serial_chain",), width=4, steps=4)
    sim, sim_run = run_sim(spec)
    dist, dist_run = run_dist(spec, 1)
    assert dist.fingerprint == sim.fingerprint
    assert dist_run.execution_time_ns == sim_run.execution_time_ns
    assert dict(dist_run.per_locality[0].values) == dict(sim_run.counters.values)


def test_planted_sim_corruption_trips_the_model_check():
    spec = WorkloadSpec(seed=5, patterns=("trivial",), width=2, steps=2)
    report = verify_spec(spec, mutate=flip_fingerprint("sim"))
    assert "PF403" in {f.rule_id for f in report.findings}


def test_planted_thread_divergence_is_caught_shrunk_and_replayable():
    """The acceptance criterion end to end."""
    spec = generate_spec(0)
    mutate = flip_fingerprint("thread")

    # 1. caught: the planted divergence surfaces as backend-divergence
    report = verify_spec(spec, mutate=mutate)
    assert not report.ok
    assert {f.rule_id for f in report.findings} == {"PF407"}

    # 2. shrunk: greedy descent reaches a <= 4-task reproducer
    result = shrink(spec, lambda s: not verify_spec(s, mutate=mutate).ok)
    assert result.spec.total_tasks <= 4
    assert spec_size(result.spec) < spec_size(spec)

    # 3. replays deterministically: same findings, word for word, twice
    first = verify_spec(result.spec, mutate=mutate)
    second = verify_spec(result.spec, mutate=mutate)
    assert [f.format() for f in first.findings] == [
        f.format() for f in second.findings
    ]
    assert first.findings  # still violating after the shrink


def test_mutate_hook_sees_every_backend():
    seen = []

    def spy(backend: str, result: StructuralResult) -> StructuralResult:
        seen.append(backend)
        return result

    spec = WorkloadSpec(seed=6, patterns=("trivial",), width=2, steps=1)
    assert verify_spec(spec, mutate=spy).ok
    assert seen == ["sim", "sim-rerun", "thread", "dist@1"]


def test_fuzz_corpus_head_is_clean():
    """The first few corpus seeds run the full ladder with zero findings —
    the in-tests mirror of ``make fuzz`` (which runs seeds 0:50)."""
    for seed in range(6):
        report = verify_spec(generate_spec(seed))
        assert report.ok, (seed, [f.format() for f in report.findings])


def test_qos_spec_runs_the_full_ladder_clean():
    """A ``use_qos`` spec (per-task classes + qos bucket scheduler) holds
    every parity invariant: sim/rerun/thread/dist@1 agree bit-for-bit."""
    spec = WorkloadSpec(
        seed=11, patterns=("stencil_1d",), width=4, steps=3,
        scheduler="qos", use_qos=True, num_qos_classes=3,
    )
    report = verify_spec(spec)
    assert report.ok, [f.format() for f in report.findings]
    assert set(report.results) == {"sim", "sim-rerun", "thread", "dist@1"}


def test_qos_class_draws_are_seeded_and_cover_the_palette():
    from repro.verify.harness import _task_qos, qos_classes_for

    spec = WorkloadSpec(seed=3, use_qos=True, num_qos_classes=3)
    classes = qos_classes_for(spec)
    assert [c.name for c in classes] == ["batch", "standard", "interactive"]
    drawn = {
        _task_qos(spec, classes, 0, step, i).name
        for step in range(8)
        for i in range(8)
    }
    assert drawn == {"batch", "standard", "interactive"}
    assert _task_qos(spec, classes, 0, 1, 2) is _task_qos(spec, classes, 0, 1, 2)
    two = qos_classes_for(WorkloadSpec(seed=3, use_qos=True))
    assert [c.name for c in two] == ["standard", "interactive"]


def test_shrinking_turns_qos_off():
    from repro.verify.shrink import shrink_candidates

    spec = WorkloadSpec(width=2, steps=1, scheduler="qos", use_qos=True)
    assert any(not c.use_qos for c in shrink_candidates(spec))
