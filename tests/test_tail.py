"""The gray-failure tolerance layer: `repro.tail`.

Unit coverage for the quantile sketch, the config validation, and the
TailManager's hedging/fencing arithmetic, plus the detector/declaration
interplay the layer exists for: a straggler beside a real crash must
produce *exactly one* declaration (the crash) and a degraded flag (the
straggler) — never two declarations, never zero — and speculative
re-execution must not double-execute tasks the recovery layer already
restored (asserted through value parity with a serial reference and the
``SPECULATION_CONSERVED`` / ``PARCELS_CONSERVED`` invariants).
"""

import pytest

from repro.dist import (
    DistConfig,
    DistRuntime,
    FaultPlan,
    RetryParams,
    TailConfig,
)
from repro.faults.plan import CrashAt, Straggler
from repro.recovery import RecoveryConfig
from repro.runtime.work import FixedWork
from repro.tail.sketch import QuantileSketch
from repro.verify.invariants import PARCELS_CONSERVED, SPECULATION_CONSERVED
from repro.verify.spec import generate_spec

# --------------------------------------------------------------------------
# The shared scenario: N localities in a ring, each step mixes a column
# with its right neighbour.  The crash at 200us lands mid-computation and
# the 4x straggler stays *under* the default suspicion threshold
# (suspicion_after=4.0), so it is gray — degraded, never declared.
# --------------------------------------------------------------------------

N = 3
STEPS = 8
WIDTH = 2
SEED = 11

CRASH = CrashAt(locality=1, at_ns=200_000)
STRAGGLER = Straggler(locality=2, factor=4.0)


def _step(t, i, j):
    return lambda a, b: a * 0.5 + b * 0.25 + t * 0.001 + i + j * 0.01


def _build(rt):
    prev = [
        [
            rt.make_ready_future(float(i + j), locality=i, name=f"r{i}c{j}")
            for j in range(WIDTH)
        ]
        for i in range(N)
    ]
    for t in range(STEPS):
        prev = [
            [
                rt.dataflow(
                    _step(t, i, j),
                    [prev[i][j], prev[(i + 1) % N][j]],
                    locality=i,
                    work=FixedWork(40_000),
                    name=f"s{t}l{i}c{j}",
                )
                for j in range(WIDTH)
            ]
            for i in range(N)
        ]
    return [f for row in prev for f in row]


def _reference():
    prev = [[float(i + j) for j in range(WIDTH)] for i in range(N)]
    for t in range(STEPS):
        prev = [
            [
                _step(t, i, j)(prev[i][j], prev[(i + 1) % N][j])
                for j in range(WIDTH)
            ]
            for i in range(N)
        ]
    return [v for row in prev for v in row]


def _run(*, crashes=(), stragglers=(), tail=None):
    rt = DistRuntime(
        DistConfig(
            num_localities=N,
            cores_per_locality=2,
            seed=SEED,
            faults=FaultPlan(
                seed=SEED + 3, crashes=tuple(crashes),
                stragglers=tuple(stragglers),
            ),
            retry=RetryParams(),
            crash_recovery=RecoveryConfig(checkpoint_interval_ns=150_000),
            tail=tail,
        )
    )
    finals = _build(rt)
    result = rt.wait(finals)
    values = [f.value for f in finals]
    return rt, result, values


def _tail_config(**overrides):
    return TailConfig(
        check_interval_ns=25_000, hedge_min_delay_ns=5_000, **overrides
    )


class TestQuantileSketch:
    def test_ring_eviction(self):
        s = QuantileSketch(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            s.add(v)
        assert len(s) == 3
        assert s.total_observations == 4
        # 1.0 was evicted: even the 1e-9 quantile lands on 2.0.
        assert s.quantile(1e-9) == 2.0

    def test_nearest_rank_quantile(self):
        s = QuantileSketch(10)
        for v in (10.0, 20.0, 30.0, 40.0):
            s.add(v)
        assert s.quantile(1.0) == 40.0
        assert s.quantile(0.5) == 20.0
        assert s.median() == 20.0

    def test_single_sample(self):
        s = QuantileSketch(4)
        s.add(7.0)
        assert s.quantile(0.9) == 7.0

    def test_empty_sketch_raises(self):
        with pytest.raises(ValueError, match="empty"):
            QuantileSketch(4).quantile(0.5)

    def test_bad_quantile_raises(self):
        s = QuantileSketch(4)
        s.add(1.0)
        with pytest.raises(ValueError, match="quantile"):
            s.quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            s.quantile(1.5)

    def test_bad_capacity_raises(self):
        with pytest.raises(ValueError, match="capacity"):
            QuantileSketch(0)


class TestTailConfigValidation:
    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"degraded_factor": 0.5}, "degraded_factor"),
            ({"min_samples": 0}, "min_samples"),
            ({"sketch_capacity": 1}, "sketch_capacity"),
            ({"check_interval_ns": 0}, "check_interval_ns"),
            ({"hedge_quantile": 0.0}, "hedge_quantile"),
            ({"hedge_quantile": 1.5}, "hedge_quantile"),
            ({"hedge_multiplier": 0.5}, "hedge_multiplier"),
            ({"hedge_min_delay_ns": -1}, "hedge_min_delay_ns"),
            ({"max_speculation_frac": 0.0}, "max_speculation_frac"),
        ],
    )
    def test_rejects(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            TailConfig(**kwargs)

    def test_defaults_valid(self):
        TailConfig()


class TestDistConfigTailValidation:
    def test_tail_requires_crash_recovery(self):
        with pytest.raises(ValueError, match="crash-recovery"):
            DistConfig(
                num_localities=2,
                tail=TailConfig(),
                retry=RetryParams(),
            )

    def test_tail_requires_retry(self):
        with pytest.raises(ValueError, match="reliable transport"):
            DistConfig(
                num_localities=2,
                tail=TailConfig(),
                crash_recovery=RecoveryConfig(),
            )


class TestTailManagerUnits:
    """Hedging/fencing arithmetic on a constructed (never run) runtime."""

    def _manager(self, tail):
        rt = DistRuntime(
            DistConfig(
                num_localities=N,
                seed=SEED,
                retry=RetryParams(),
                crash_recovery=RecoveryConfig(),
                tail=tail,
            )
        )
        return rt.tail_manager

    def test_no_hedge_delay_before_min_samples(self):
        tm = self._manager(TailConfig(min_samples=4))
        assert tm.hedge_delay_ns(0, 1) is None
        for _ in range(3):
            tm.note_ack_rtt(0, 1, 10_000)
        assert tm.hedge_delay_ns(0, 1) is None

    def test_hedge_delay_is_multiplied_quantile(self):
        tm = self._manager(
            TailConfig(
                min_samples=4,
                hedge_quantile=0.9,
                hedge_multiplier=2.0,
                hedge_min_delay_ns=0,
            )
        )
        for _ in range(4):
            tm.note_ack_rtt(0, 1, 10_000)
        assert tm.hedge_delay_ns(0, 1) == 20_000
        # The link is directional and the sketch is per-link.
        assert tm.hedge_delay_ns(1, 0) is None

    def test_hedge_delay_floor(self):
        tm = self._manager(TailConfig(min_samples=1, hedge_min_delay_ns=50_000))
        tm.note_ack_rtt(0, 1, 1_000)
        assert tm.hedge_delay_ns(0, 1) == 50_000

    def test_hedging_disabled_means_no_delay(self):
        tm = self._manager(TailConfig(hedge=False, min_samples=1))
        tm.note_ack_rtt(0, 1, 10_000)
        assert tm.hedge_delay_ns(0, 1) is None

    def test_fencing_defaults(self):
        tm = self._manager(TailConfig())
        for p in range(N):
            assert tm.epoch_of(p) == 0
            assert not tm.is_fenced(p)
            assert not tm.is_stale(p, 0)

    def test_fencing_disabled_never_stale(self):
        tm = self._manager(TailConfig(fencing=False))
        tm.note_declared(1)
        assert tm.epoch_of(1) == 0
        assert not tm.is_fenced(1)
        assert not tm.is_stale(1, 0)


class TestDisabledTail:
    def test_no_tail_fields_without_tail_config(self):
        _, result, values = _run(stragglers=(STRAGGLER,), tail=None)
        assert values == _reference()
        assert result.degraded_events == 0
        assert result.localities_degraded == 0
        assert result.hedges_armed == 0
        assert result.tasks_speculated == 0
        assert result.fenced_rejections == 0
        assert not any("/tail" in n for n in result.counters.values)


class TestDetectorDeclarationInterplay:
    def test_straggler_alone_is_degraded_never_declared(self):
        rt, result, values = _run(stragglers=(STRAGGLER,), tail=_tail_config())
        assert values == _reference()
        assert result.crashes_detected == 0
        assert result.degraded_events > 0
        assert rt.tail_manager.degraded_localities == (STRAGGLER.locality,)

    def test_crash_alone_is_declared(self):
        _, result, values = _run(crashes=(CRASH,), tail=_tail_config())
        assert values == _reference()
        assert result.crashes_detected == 1

    def test_straggler_beside_crash_one_declaration_one_flag(self):
        rt, result, values = _run(
            crashes=(CRASH,), stragglers=(STRAGGLER,), tail=_tail_config()
        )
        tm = rt.tail_manager
        # Exactly one declaration: the crash.  The straggler stays gray.
        assert result.crashes_detected == 1
        assert result.degraded_events > 0
        assert tm.degraded_localities == (STRAGGLER.locality,)
        assert not tm.is_fenced(STRAGGLER.locality)
        # The declared locality is fenced, not degraded.
        assert tm.is_fenced(CRASH.locality)
        assert tm.epoch_of(CRASH.locality) == 1
        assert tm.is_stale(CRASH.locality, 0)
        assert not tm.is_stale(CRASH.locality, 1)
        assert len(tm._fence_notes) == 1
        # Speculation beside in-flight recovery must not double-execute
        # restored tasks: values match the serial reference and the
        # speculation/parcel ledgers balance.
        assert values == _reference()
        SPECULATION_CONSERVED.require(result)
        PARCELS_CONSERVED.require(result)

    def test_tail_counters_exported(self):
        _, result, _ = _run(stragglers=(STRAGGLER,), tail=_tail_config())
        names = result.counters.values
        for loc in range(N):
            assert f"/tail{{locality#{loc}/total}}/count/degraded@gauge" in names
            assert f"/tail{{locality#{loc}/total}}/count/speculations" in names


class TestSpeculationLedger:
    def test_ledger_identities_under_straggle(self):
        _, result, values = _run(stragglers=(STRAGGLER,), tail=_tail_config())
        assert values == _reference()
        assert result.tasks_speculated > 0
        assert (
            result.speculation_wins + result.speculations_cancelled
            == result.tasks_speculated
        )
        assert result.originals_cancelled <= result.speculation_wins
        assert result.hedges_sent == result.hedges_won + result.hedges_lost
        assert (
            result.hedges_armed
            == result.hedges_sent + result.hedges_cancelled
        )
        SPECULATION_CONSERVED.require(result)

    def test_speculation_respects_budget(self):
        rt, result, _ = _run(stragglers=(STRAGGLER,), tail=_tail_config())
        assert result.tasks_speculated <= rt.tail_manager.speculation_budget

    def test_speculation_disabled(self):
        _, result, values = _run(
            stragglers=(STRAGGLER,), tail=_tail_config(speculate=False)
        )
        assert values == _reference()
        assert result.tasks_speculated == 0
        assert result.originals_cancelled == 0


class TestUseTailCorpusDensity:
    def test_fuzz_corpus_takes_the_tail_leg(self):
        specs = [generate_spec(seed) for seed in range(50)]
        tailed = [s for s in specs if s.use_tail]
        assert len(tailed) >= 10
        assert all(s.num_localities >= 2 for s in tailed)
