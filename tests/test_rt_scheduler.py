"""Tests for RM priority assignment and the job-level EDF scheduler."""

import pytest

from repro.rt.model import PeriodicTaskSpec, SporadicTaskSpec, TaskSet
from repro.rt.scheduler import EdfScheduler, RtTag, rate_monotonic_priorities
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Priority
from repro.runtime.work import FixedWork
from repro.schedulers import SCHEDULERS, make_scheduler


def periodic(name, period):
    return PeriodicTaskSpec(
        name=name, wcet_ns=period // 10, relative_deadline_ns=period,
        period_ns=period,
    )


# -- rate-monotonic assignment ---------------------------------------------------


def test_rm_ranks_shortest_period_high_longest_low():
    ts = TaskSet(
        tasks=(periodic("slow", 9_000), periodic("fast", 1_000),
               periodic("mid", 3_000))
    )
    prio = rate_monotonic_priorities(ts)
    assert prio == {
        "fast": Priority.HIGH, "mid": Priority.NORMAL, "slow": Priority.LOW,
    }


def test_rm_uses_min_interarrival_for_sporadic_tasks():
    ts = TaskSet(
        tasks=(
            SporadicTaskSpec(
                name="urgent", wcet_ns=100, relative_deadline_ns=2_000,
                min_separation_ns=2_000,
            ),
            periodic("bulk", 50_000),
        )
    )
    prio = rate_monotonic_priorities(ts)
    assert prio["urgent"] == Priority.HIGH
    assert prio["bulk"] == Priority.LOW


def test_rm_single_rate_set_stays_all_normal():
    ts = TaskSet(tasks=(periodic("a", 4_000), periodic("b", 4_000)))
    assert set(rate_monotonic_priorities(ts).values()) == {Priority.NORMAL}


# -- the EDF scheduler ------------------------------------------------------------


def test_edf_registered_in_the_scheduler_registry():
    assert "rt-edf" in SCHEDULERS
    policy = make_scheduler("rt-edf")
    assert isinstance(policy, EdfScheduler)
    assert policy.name == "rt-edf"


def run_tagged(deadlines, *, num_cores=1):
    """Spawn one task per (bucket, deadline) pair; returns completion order."""
    rt = Runtime(RuntimeConfig(num_cores=num_cores, scheduler=EdfScheduler()))
    order = []
    for key, deadline in deadlines:
        rt.async_(
            lambda key=key: order.append(key),
            work=FixedWork(1_000),
            name=f"job:{key}",
            qos=RtTag(absolute_deadline_ns=deadline, bucket_key=key),
        )
    rt.run()
    return order


def test_edf_serves_earliest_absolute_deadline_first():
    order = run_tagged(
        [("late", 90_000), ("soon", 10_000), ("mid", 50_000)]
    )
    assert order == ["soon", "mid", "late"]


def test_edf_ties_break_on_bucket_arrival_order():
    order = run_tagged([("b", 5_000), ("a", 5_000)])
    assert order == ["b", "a"]  # first-enqueued bucket wins the tie


def test_edf_within_bucket_fifo_is_deadline_order():
    order = run_tagged(
        [("t", 10_000), ("t", 20_000), ("u", 15_000), ("t", 30_000)]
    )
    assert order == ["t", "u", "t", "t"]


def test_untagged_tasks_share_the_default_bucket_and_still_run():
    rt = Runtime(RuntimeConfig(num_cores=2, scheduler=EdfScheduler()))
    ran = []
    rt.async_(lambda: ran.append("plain"), work=FixedWork(500))
    rt.async_(
        lambda: ran.append("urgent"),
        work=FixedWork(500),
        qos=RtTag(absolute_deadline_ns=1_000, bucket_key="rt"),
    )
    result = rt.run()
    assert sorted(ran) == ["plain", "urgent"]
    assert result.tasks_executed == 2


def test_edf_run_is_deterministic():
    jobs = [("a", 40_000), ("b", 10_000), ("a", 20_000), ("c", 15_000)]
    first = run_tagged(jobs, num_cores=2)
    second = run_tagged(jobs, num_cores=2)
    assert first == second


def test_edf_root_penalty_scales_with_active_workers():
    policy = EdfScheduler()
    assert policy.shared_structure_penalty_ns(1) == 0
    assert policy.shared_structure_penalty_ns(4) == 3 * 12


def test_edf_rejects_negative_default_latency():
    with pytest.raises(ValueError):
        EdfScheduler(default_latency_ns=-1)
