"""Property tests for the RT task-set model (repro.rt.model).

The release generators make *structural* promises, not statistical ones:
sporadic releases are never closer than the minimum separation, periodic
releases with zero jitter are exact, every draw is a pure function of the
seed, and grain splitting preserves total demand to the nanosecond.
Hypothesis walks those promises over the parameter space.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rt.model import (
    PeriodicTaskSpec,
    SporadicTaskSpec,
    TaskSet,
    split_exact,
)

seeds = st.integers(min_value=0, max_value=2**32 - 1)


# -- split_exact ----------------------------------------------------------------


@given(
    total=st.integers(min_value=1, max_value=500_000),
    grain=st.integers(min_value=1, max_value=50_000),
)
@settings(max_examples=200, deadline=None)
def test_split_exact_preserves_total_and_respects_grain(total, grain):
    chunks = split_exact(total, grain)
    assert sum(chunks) == total
    assert all(1 <= c <= grain for c in chunks)
    # near-equal: chunk lengths differ by at most one nanosecond
    assert max(chunks) - min(chunks) <= 1


def test_split_exact_degenerate_forms():
    assert split_exact(0, 100) == ()
    assert split_exact(500, None) == (500,)
    assert split_exact(500, 500) == (500,)
    assert split_exact(500, 1_000) == (500,)


# -- periodic releases ----------------------------------------------------------


@given(
    seed=seeds,
    period=st.integers(min_value=100, max_value=50_000),
    phase=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=100, deadline=None)
def test_periodic_releases_are_exact_without_jitter(seed, period, phase):
    spec = PeriodicTaskSpec(
        name="p", wcet_ns=50, relative_deadline_ns=period,
        period_ns=period, phase_ns=phase,
    )
    window = 20 * period
    releases = spec.release_times(seed, 0, window)
    assert releases == [
        phase + k * period for k in range(len(releases))
    ]
    assert all(t < window for t in releases)
    # the next release would have fallen outside the window
    assert phase + len(releases) * period >= window


@given(
    seed=seeds,
    period=st.integers(min_value=100, max_value=50_000),
    jitter_frac=st.floats(min_value=0.0, max_value=0.9),
)
@settings(max_examples=100, deadline=None)
def test_periodic_jittered_releases_stay_ordered(seed, period, jitter_frac):
    spec = PeriodicTaskSpec(
        name="p", wcet_ns=50, relative_deadline_ns=period,
        period_ns=period, release_jitter_ns=int(period * jitter_frac),
    )
    releases = spec.release_times(seed, 0, 30 * period)
    assert releases == sorted(set(releases))  # strictly increasing
    for k, t in enumerate(releases):
        assert k * period <= t <= k * period + spec.release_jitter_ns


# -- sporadic releases ----------------------------------------------------------


@given(
    seed=seeds,
    min_sep=st.integers(min_value=100, max_value=50_000),
    task_index=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=100, deadline=None)
def test_sporadic_min_separation_always_respected(seed, min_sep, task_index):
    spec = SporadicTaskSpec(
        name="s", wcet_ns=50, relative_deadline_ns=min_sep,
        min_separation_ns=min_sep,
    )
    releases = spec.release_times(seed, task_index, 40 * min_sep)
    assert releases[0] == 0
    for a, b in zip(releases, releases[1:]):
        assert b - a >= min_sep


@given(seed=seeds, min_sep=st.integers(min_value=100, max_value=50_000))
@settings(max_examples=60, deadline=None)
def test_sporadic_zero_extra_gap_degenerates_to_periodic(seed, min_sep):
    spec = SporadicTaskSpec(
        name="s", wcet_ns=50, relative_deadline_ns=min_sep,
        min_separation_ns=min_sep, mean_extra_gap_ns=0.0,
    )
    releases = spec.release_times(seed, 0, 10 * min_sep)
    assert releases == [k * min_sep for k in range(10)]


# -- seed determinism -----------------------------------------------------------


@given(seed=seeds)
@settings(max_examples=60, deadline=None)
def test_same_seed_means_identical_schedules_and_demands(seed):
    spec = SporadicTaskSpec(
        name="s", wcet_ns=10_000, relative_deadline_ns=40_000,
        min_separation_ns=20_000, exec_variation=0.3,
    )
    window = 400_000
    assert spec.release_times(seed, 2, window) == spec.release_times(
        seed, 2, window
    )
    for job in range(8):
        assert spec.execution_ns(seed, 2, job) == spec.execution_ns(
            seed, 2, job
        )
        assert spec.job_chunks(seed, 2, job) == spec.job_chunks(seed, 2, job)


@given(seed=seeds, var=st.floats(min_value=0.0, max_value=0.99))
@settings(max_examples=100, deadline=None)
def test_execution_demand_within_variation_band(seed, var):
    spec = PeriodicTaskSpec(
        name="p", wcet_ns=10_000, relative_deadline_ns=40_000,
        period_ns=40_000, exec_variation=var,
    )
    for job in range(6):
        demand = spec.execution_ns(seed, 0, job)
        assert 1 <= demand <= spec.wcet_ns
        assert demand >= int(spec.wcet_ns * (1.0 - var)) - 1


# -- the grain axis --------------------------------------------------------------


@given(
    seed=seeds,
    grain=st.integers(min_value=500, max_value=60_000),
    cs=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=150, deadline=None)
def test_with_grain_preserves_job_demand_exactly(seed, grain, cs):
    spec = SporadicTaskSpec(
        name="s", wcet_ns=40_000, relative_deadline_ns=100_000,
        min_separation_ns=100_000, exec_variation=0.25,
        resource="bus" if cs else None, critical_section_ns=cs,
    )
    for job in range(5):
        demand = spec.execution_ns(seed, 0, job)
        whole_cs, whole_rest = spec.job_chunks(seed, 0, job)
        split = spec.with_grain(grain)
        cs_chunks, rest_chunks = split.job_chunks(seed, 0, job)
        # splitting never changes the demand or the cs/rest partition
        assert sum(cs_chunks) + sum(rest_chunks) == demand
        assert sum(cs_chunks) == sum(whole_cs)
        assert sum(rest_chunks) == sum(whole_rest)
        assert all(c <= grain for c in cs_chunks + rest_chunks)


def test_with_grain_maps_over_the_whole_set():
    ts = TaskSet(
        tasks=(
            PeriodicTaskSpec(
                name="a", wcet_ns=9_000, relative_deadline_ns=30_000,
                period_ns=30_000,
            ),
            SporadicTaskSpec(
                name="b", wcet_ns=5_000, relative_deadline_ns=50_000,
                min_separation_ns=50_000,
            ),
        ),
        seed=7,
    )
    fine = ts.with_grain(2_000)
    assert all(t.grain_ns == 2_000 for t in fine.tasks)
    assert ts.utilization() == pytest.approx(fine.utilization())


# -- TaskSet arithmetic and round-trip -------------------------------------------


def test_utilization_is_wcet_over_interarrival():
    ts = TaskSet(
        tasks=(
            PeriodicTaskSpec(
                name="a", wcet_ns=10_000, relative_deadline_ns=40_000,
                period_ns=40_000,
            ),
            SporadicTaskSpec(
                name="b", wcet_ns=30_000, relative_deadline_ns=60_000,
                min_separation_ns=60_000,
            ),
        )
    )
    assert ts.utilization() == pytest.approx(10_000 / 40_000 + 30_000 / 60_000)


def test_taskset_json_round_trip_preserves_kinds():
    ts = TaskSet(
        seed=99,
        tasks=(
            PeriodicTaskSpec(
                name="a", wcet_ns=9_000, relative_deadline_ns=30_000,
                period_ns=30_000, phase_ns=500, release_jitter_ns=100,
                exec_variation=0.1, grain_ns=1_000,
            ),
            SporadicTaskSpec(
                name="b", wcet_ns=5_000, relative_deadline_ns=50_000,
                min_separation_ns=50_000, resource="bus",
                critical_section_ns=2_000,
            ),
        ),
    )
    back = TaskSet.from_json(ts.to_json())
    assert back == ts
    assert isinstance(back.tasks[0], PeriodicTaskSpec)
    assert isinstance(back.tasks[1], SporadicTaskSpec)
    assert back.resources() == ("bus",)
    assert back.max_critical_section_ns() == 2_000


def test_model_validation_rejects_malformed_specs():
    with pytest.raises(ValueError):
        PeriodicTaskSpec(
            name="p", wcet_ns=100, relative_deadline_ns=400,
            period_ns=400, release_jitter_ns=400,  # jitter >= period
        )
    with pytest.raises(ValueError):
        SporadicTaskSpec(
            name="s", wcet_ns=100, relative_deadline_ns=400,
            min_separation_ns=400, critical_section_ns=50,  # no resource
        )
    with pytest.raises(ValueError):
        SporadicTaskSpec(
            name="s", wcet_ns=100, relative_deadline_ns=400,
            min_separation_ns=400, resource="bus",  # zero-length cs
        )
    with pytest.raises(ValueError):
        SporadicTaskSpec(
            name="s", wcet_ns=100, relative_deadline_ns=400,
            min_separation_ns=400, resource="bus",
            critical_section_ns=200,  # cs > wcet
        )
    with pytest.raises(ValueError):
        TaskSet(tasks=())
    with pytest.raises(ValueError):
        TaskSet(
            tasks=(
                PeriodicTaskSpec(
                    name="dup", wcet_ns=1, relative_deadline_ns=1,
                    period_ns=1,
                ),
                SporadicTaskSpec(
                    name="dup", wcet_ns=1, relative_deadline_ns=1,
                    min_separation_ns=1,
                ),
            )
        )
