"""Unit tests for repro.util.timeunits."""

import pytest

from repro.util.timeunits import (
    MICROSECOND,
    MILLISECOND,
    NANOSECOND,
    SECOND,
    format_ns,
    ns_to_seconds,
    seconds_to_ns,
)


class TestConstants:
    def test_nanosecond_is_unit(self):
        assert NANOSECOND == 1

    def test_scale_ratios(self):
        assert MICROSECOND == 1_000 * NANOSECOND
        assert MILLISECOND == 1_000 * MICROSECOND
        assert SECOND == 1_000 * MILLISECOND


class TestConversions:
    def test_seconds_to_ns_integral(self):
        assert seconds_to_ns(2) == 2 * SECOND

    def test_seconds_to_ns_fractional(self):
        assert seconds_to_ns(1.5) == 1_500_000_000

    def test_seconds_to_ns_rounds(self):
        # 1 ns expressed in seconds survives the round trip.
        assert seconds_to_ns(1e-9) == 1

    def test_ns_to_seconds(self):
        assert ns_to_seconds(2_500_000_000) == pytest.approx(2.5)

    def test_round_trip(self):
        for value in (0.0, 1e-9, 0.125, 3.75, 1e4):
            assert ns_to_seconds(seconds_to_ns(value)) == pytest.approx(value)


class TestFormatNs:
    def test_nanoseconds(self):
        assert format_ns(37) == "37ns"

    def test_microseconds(self):
        assert format_ns(2_500) == "2.500us"

    def test_milliseconds(self):
        assert format_ns(3_200_000) == "3.200ms"

    def test_seconds(self):
        assert format_ns(3_200_000_000) == "3.200s"

    def test_negative_values_keep_unit(self):
        assert format_ns(-2_500) == "-2.500us"

    def test_zero(self):
        assert format_ns(0) == "0ns"
