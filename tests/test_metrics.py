"""Unit tests for Eq. 1-6 (repro.core.metrics) on hand-crafted inputs."""

import pytest

from repro.core.metrics import GranularityMetrics, MetricInputs


def inputs(**overrides) -> MetricInputs:
    base = dict(
        execution_time_ns=1_000_000.0,
        cumulative_exec_ns=600_000.0,
        cumulative_func_ns=800_000.0,
        tasks_executed=100,
        num_cores=4,
        pending_accesses=500.0,
        pending_misses=50.0,
        task_duration_1core_ns=5_000.0,
    )
    base.update(overrides)
    return MetricInputs(**base)


class TestValidation:
    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            inputs(num_cores=0)

    def test_rejects_negative_tasks(self):
        with pytest.raises(ValueError):
            inputs(tasks_executed=-1)

    def test_rejects_func_below_exec(self):
        with pytest.raises(ValueError, match="func"):
            inputs(cumulative_func_ns=100.0, cumulative_exec_ns=200.0)


class TestEquations:
    def test_eq1_idle_rate(self):
        m = GranularityMetrics.compute(inputs())
        # (800k - 600k) / 800k = 0.25
        assert m.idle_rate == pytest.approx(0.25)

    def test_eq2_task_duration(self):
        m = GranularityMetrics.compute(inputs())
        assert m.task_duration_ns == pytest.approx(6_000.0)

    def test_eq3_task_overhead(self):
        m = GranularityMetrics.compute(inputs())
        assert m.task_overhead_ns == pytest.approx(2_000.0)

    def test_eq4_tm_per_core(self):
        m = GranularityMetrics.compute(inputs())
        # t_o * n_t / n_c = 2000 * 100 / 4
        assert m.thread_management_per_core_ns == pytest.approx(50_000.0)

    def test_eq5_wait_time(self):
        m = GranularityMetrics.compute(inputs())
        # t_d - t_d1 = 6000 - 5000
        assert m.wait_time_per_task_ns == pytest.approx(1_000.0)

    def test_eq6_wait_per_core(self):
        m = GranularityMetrics.compute(inputs())
        # (t_d - t_d1) * n_t / n_c = 1000 * 100 / 4
        assert m.wait_time_per_core_ns == pytest.approx(25_000.0)

    def test_negative_wait_preserved(self):
        m = GranularityMetrics.compute(inputs(task_duration_1core_ns=9_000.0))
        assert m.wait_time_per_task_ns == pytest.approx(-3_000.0)
        assert m.wait_time_per_core_ns == pytest.approx(-75_000.0)

    def test_wait_none_without_reference(self):
        m = GranularityMetrics.compute(inputs(task_duration_1core_ns=None))
        assert m.wait_time_per_task_ns is None
        assert m.wait_time_per_core_ns is None
        assert m.combined_cost_ns is None

    def test_combined_cost(self):
        m = GranularityMetrics.compute(inputs())
        assert m.combined_cost_ns == pytest.approx(75_000.0)

    def test_identity_idle_rate_vs_overheads(self):
        """Eq. 1 and Eq. 3 describe the same quantity at different
        granularity: Ir * Σt_func == t_o * n_t."""
        m = GranularityMetrics.compute(inputs())
        assert m.idle_rate * 800_000.0 == pytest.approx(
            m.task_overhead_ns * m.tasks_executed
        )


class TestDegenerateCases:
    def test_zero_tasks(self):
        m = GranularityMetrics.compute(
            inputs(tasks_executed=0, cumulative_exec_ns=0.0)
        )
        assert m.task_duration_ns == 0.0
        assert m.task_overhead_ns == 0.0
        assert m.thread_management_per_core_ns == 0.0

    def test_zero_func_time(self):
        m = GranularityMetrics.compute(
            inputs(cumulative_func_ns=0.0, cumulative_exec_ns=0.0)
        )
        assert m.idle_rate == 0.0

    def test_pending_miss_rate(self):
        m = GranularityMetrics.compute(inputs())
        assert m.pending_miss_rate == pytest.approx(0.1)

    def test_pending_miss_rate_no_accesses(self):
        m = GranularityMetrics.compute(inputs(pending_accesses=0.0, pending_misses=0.0))
        assert m.pending_miss_rate == 0.0

    def test_execution_time_seconds(self):
        m = GranularityMetrics.compute(inputs())
        assert m.execution_time_s == pytest.approx(1e-3)


class TestFromRunResult:
    def test_extraction(self):
        from repro.runtime.runtime import Runtime
        from repro.runtime.work import FixedWork

        rt = Runtime(num_cores=2, seed=1)
        for _ in range(10):
            rt.async_(lambda: None, work=FixedWork(1_000))
        result = rt.run()
        mi = MetricInputs.from_run_result(result, task_duration_1core_ns=900.0)
        assert mi.tasks_executed == 10
        assert mi.num_cores == 2
        assert mi.execution_time_ns == float(result.execution_time_ns)
        m = GranularityMetrics.compute(mi)
        assert m.idle_rate == pytest.approx(result.idle_rate, rel=1e-9)
        assert m.task_duration_ns == pytest.approx(
            result.task_duration_ns, rel=1e-9
        )
