"""Golden-findings tests for every lint rule.

Each rule gets (at least) one fixture that must trigger it and one *clean
near-miss* — code that skirts the rule's pattern but is idiomatic and must
NOT be flagged.  The near-misses encode the calibration set: the constructs
``examples/`` and ``repro.apps`` actually use.
"""

from repro.analysis import lint_source


def rule_ids(source: str) -> list[str]:
    return [f.rule_id for f in lint_source(source)]


def findings_for(source: str, rule: str):
    return [f for f in lint_source(source) if f.rule_id == rule]


# -- TG100: unparseable file -------------------------------------------------------


def test_syntax_error_reports_tg100_not_crash():
    found = lint_source("def broken(:\n", "broken.py")
    assert [f.rule_id for f in found] == ["TG100"]
    assert found[0].file == "broken.py"
    assert found[0].severity.name == "ERROR"


# -- TG101: blocking get inside a task body ----------------------------------------

TG101_TRIGGER = """
def body():
    f = rt.async_(lambda: 1)
    return f.value
outer = rt.async_(body)
"""

TG101_WAIT_TRIGGER = """
inner = rt.async_(lambda: 1)
outer = rt.async_(lambda: rt.wait(inner))
"""

TG101_CLEAN_GENERATOR = """
produced = rt.async_(lambda: 2)
def consumer():
    yield produced
    return produced.value + 1
rt.async_(consumer)  # noqa: TG102
"""

TG101_CLEAN_DRIVER = """
f = rt.async_(lambda: 1)
rt.run()
print(f.value)
"""


def test_tg101_value_read_in_task_body():
    found = findings_for(TG101_TRIGGER, "TG101")
    assert len(found) == 1
    assert "'f'" in found[0].message
    assert found[0].line == 4


def test_tg101_wait_call_in_task_body():
    assert len(findings_for(TG101_WAIT_TRIGGER, "TG101")) == 1


def test_tg101_generator_suspension_is_clean():
    # The sanctioned suspension pattern: yield the future, then read it.
    assert not findings_for(TG101_CLEAN_GENERATOR, "TG101")


def test_tg101_driver_code_reads_are_clean():
    # .value after run() in driver code is the normal consumption pattern.
    assert not findings_for(TG101_CLEAN_DRIVER, "TG101")


# -- TG102: lost future ------------------------------------------------------------

TG102_DISCARD = """
rt.async_(lambda: 1)
rt.run()
"""

TG102_NEVER_READ = """
def run_it(rt):
    leaked = rt.async_(lambda: 1)
    done = rt.async_(lambda: 2)
    return rt.wait(done)
"""

TG102_CLEAN = """
futures = [rt.async_(lambda i=i: i) for i in range(10)]
total = rt.dataflow(lambda *xs: sum(xs), futures)
rt.run()
print(total.value)
"""


def test_tg102_discarded_spawn_result():
    found = findings_for(TG102_DISCARD, "TG102")
    assert len(found) == 1
    assert "discarded" in found[0].message


def test_tg102_assigned_but_never_read():
    found = findings_for(TG102_NEVER_READ, "TG102")
    assert len(found) == 1
    assert "'leaked'" in found[0].message


def test_tg102_composed_futures_are_clean():
    assert not findings_for(TG102_CLEAN, "TG102")


def test_tg102_underscore_names_are_exempt():
    assert not findings_for("_ = rt.async_(lambda: 1)\nrt.run()\n", "TG102")


# -- TG103: unsynchronized capture -------------------------------------------------

TG103_APPEND = """
def run_it(rt):
    results = []
    for i in range(4):
        rt.async_(lambda i=i: results.append(i))  # noqa: TG102
    rt.run()
    return results
"""

TG103_SUBSCRIPT = """
def run_it(rt):
    out = {}
    f = rt.async_(lambda: out.update(a=1))
    def body():
        out["b"] = 2
    g = rt.async_(body)
    rt.run()
    return out, f.value, g.value
"""

TG103_CLEAN_LOCKED = """
def run_it(rt, lock):
    results = []
    def body(i):
        with lock:
            results.append(i)
    fs = [rt.async_(body, i) for i in range(4)]
    rt.run()
    return results, fs
"""

TG103_CLEAN_REDUCE = """
def run_it(rt):
    parts = [rt.async_(lambda i=i: i * i) for i in range(4)]
    total = rt.dataflow(lambda *xs: sum(xs), parts)
    rt.run()
    return total.value
"""


def test_tg103_append_to_captured_list():
    found = findings_for(TG103_APPEND, "TG103")
    assert len(found) == 1
    assert "'results'" in found[0].message


def test_tg103_update_and_subscript_store():
    found = findings_for(TG103_SUBSCRIPT, "TG103")
    assert len(found) == 2  # the .update() lambda and the out["b"] body


def test_tg103_mutation_under_lock_is_clean():
    assert not findings_for(TG103_CLEAN_LOCKED, "TG103")


def test_tg103_value_reduction_is_clean():
    assert not findings_for(TG103_CLEAN_REDUCE, "TG103")


# -- TG104: per-element spawn in nested loops --------------------------------------

TG104_TRIGGER = """
def run_it(rt, grid):
    fs = []
    for row in grid:
        for cell in row:
            fs.append(rt.async_(lambda c=cell: c + 1))
    rt.run()
    return fs
"""

TG104_COMPREHENSION = """
fs = [rt.async_(lambda: 0) for i in range(10) for j in range(10)]
rt.run()
print(len(fs), fs)
"""

TG104_CLEAN_SINGLE_LOOP = """
fs = [rt.async_(lambda i=i: i) for i in range(64)]
rt.run()
print(len(fs))
"""

TG104_CLEAN_WAVEFRONT = """
def run_it(rt, tiles, n):
    for i in range(n):
        for j in range(n):
            deps = [tiles[i - 1, j], tiles[i, j - 1]]
            tiles[i, j] = rt.dataflow(lambda a, b: a + b, deps)
    rt.run()
"""


def test_tg104_nested_loop_spawn():
    found = findings_for(TG104_TRIGGER, "TG104")
    assert len(found) == 1
    assert "2 loops deep" in found[0].message


def test_tg104_nested_comprehension_counts_as_loops():
    assert len(findings_for(TG104_COMPREHENSION, "TG104")) == 1


def test_tg104_single_loop_is_clean():
    assert not findings_for(TG104_CLEAN_SINGLE_LOOP, "TG104")


def test_tg104_dataflow_with_dependencies_is_clean():
    # Dependency-carrying dataflow in nested loops IS the task graph
    # (wavefront pattern) — never flagged.
    assert not findings_for(TG104_CLEAN_WAVEFRONT, "TG104")


# -- TG105: unfulfilled manual future ----------------------------------------------

TG105_TRIGGER = """
from repro import Future
never = Future("never")
g = rt.dataflow(lambda x: x, [never])
rt.run()
print(g.value)
"""

TG105_CLEAN_SATISFIED = """
from repro import Future
done = Future("done")
def body():
    done.set_value(42)
rt.async_(body)  # noqa: TG102
rt.run()
print(done.value)
"""

TG105_CLEAN_ESCAPES = """
from repro import Future
handoff = Future("handoff")
install_completion_handler(handoff)
rt.run()
"""


def test_tg105_never_satisfied_future():
    found = findings_for(TG105_TRIGGER, "TG105")
    assert len(found) == 1
    assert "'never'" in found[0].message


def test_tg105_satisfied_in_closure_is_clean():
    # The producer/consumer idiom from repro.apps.microbench.
    assert not findings_for(TG105_CLEAN_SATISFIED, "TG105")


def test_tg105_future_passed_to_helper_is_clean():
    # Escaping to an unknown callee may be satisfied elsewhere.
    assert not findings_for(TG105_CLEAN_ESCAPES, "TG105")


# -- TG106: nondeterministic source in a task body ---------------------------------

TG106_RANDOM = """
import random
def body():
    return random.random()
f = rt.async_(body)
rt.run()
print(f.value)
"""

TG106_CLOCK = """
import time
f = rt.async_(lambda: time.monotonic())
rt.run()
print(f.value)
"""

TG106_DATETIME = """
from datetime import datetime
f = rt.async_(lambda: datetime.now())
rt.run()
print(f.value)
"""

TG106_CLEAN_DRIVER = """
import time
start = time.time()
f = rt.async_(lambda: 1)
rt.run()
print(f.value, time.time() - start)
"""

TG106_CLEAN_SEEDED_STREAM = """
from repro.faults.plan import stream_unit
def body():
    return stream_unit(7, 0x7C, 3, 1)
f = rt.async_(body)
rt.run()
print(f.value)
"""

TG106_CLEAN_INJECTED = """
def run_it(rt, random):
    f = rt.async_(lambda: random.random())
    rt.run()
    return f.value
"""

TG106_CLEAN_RNG_OBJECT = """
import random
def run_it(rt, seed):
    rng = random.Random(seed)
    f = rt.async_(lambda: rng.random())
    rt.run()
    return f.value
"""

TG106_CLEAN_AWARE_NOW = """
from datetime import datetime, timezone
f = rt.async_(lambda: datetime.now(timezone.utc))
rt.run()
print(f.value)
"""


def test_tg106_global_random_in_task_body():
    found = findings_for(TG106_RANDOM, "TG106")
    assert len(found) == 1
    assert "random.random()" in found[0].message
    assert found[0].line == 4


def test_tg106_clock_reads_in_task_body():
    assert len(findings_for(TG106_CLOCK, "TG106")) == 1
    assert len(findings_for(TG106_DATETIME, "TG106")) == 1


def test_tg106_driver_timing_is_clean():
    # Timing the run from driver code is the normal measurement pattern.
    assert not findings_for(TG106_CLEAN_DRIVER, "TG106")


def test_tg106_seeded_splitmix_stream_is_clean():
    # The sanctioned determinism pattern: pure SplitMix64 streams.
    assert not findings_for(TG106_CLEAN_SEEDED_STREAM, "TG106")


def test_tg106_injected_rng_is_exempt():
    # Dependency injection — even shadowing the module name — is exempt.
    assert not findings_for(TG106_CLEAN_INJECTED, "TG106")
    assert not findings_for(TG106_CLEAN_RNG_OBJECT, "TG106")


def test_tg106_datetime_now_with_tz_is_clean():
    # Only the *argless* datetime.now() is flagged.
    assert not findings_for(TG106_CLEAN_AWARE_NOW, "TG106")


def test_tg106_noqa_is_honored():
    src = (
        "import random\n"
        "f = rt.async_(lambda: random.random())  # noqa: TG106\n"
        "rt.run()\n"
        "print(f.value)\n"
    )
    assert not findings_for(src, "TG106")


# -- TG107: ad-hoc lock acquisition in a task body ---------------------------------

TG107_WITH = """
import threading
lock = threading.Lock()
counts = {}
def body():
    with lock:
        counts["n"] = counts.get("n", 0) + 1
f = rt.async_(body)
rt.run()
print(f.value, counts)
"""

TG107_ACQUIRE = """
from threading import RLock
guard = RLock()
def body():
    guard.acquire()
    try:
        return 1
    finally:
        guard.release()
f = rt.async_(body)
rt.run()
print(f.value)
"""

TG107_CLEAN_INJECTED = """
import threading
lock = threading.Lock()
def run_it(rt, lock):
    results = []
    def body(i):
        with lock:
            results.append(i)  # noqa: TG103
    fs = [rt.async_(body, i) for i in range(4)]
    rt.run()
    return results, fs
"""

TG107_CLEAN_DRIVER = """
import threading
lock = threading.Lock()
f = rt.async_(lambda: 1)
with lock:
    rt.run()
print(f.value)
"""


def test_tg107_with_block_on_module_lock():
    found = findings_for(TG107_WITH, "TG107")
    assert len(found) == 1
    assert "'lock'" in found[0].message
    assert "repro.rt" in found[0].message


def test_tg107_explicit_acquire():
    found = findings_for(TG107_ACQUIRE, "TG107")
    assert len(found) == 1
    assert "acquires" in found[0].message


def test_tg107_injected_lock_is_exempt():
    # A lock received as a parameter is the sanctioned injected-dependency
    # shape (same exemption as TG106's injected RNG).
    assert not findings_for(TG107_CLEAN_INJECTED, "TG107")


def test_tg107_driver_lock_is_clean():
    assert not findings_for(TG107_CLEAN_DRIVER, "TG107")


def test_tg107_noqa_is_honored():
    src = (
        "from threading import Lock\n"
        "lock = Lock()\n"
        "def body():\n"
        "    with lock:  # noqa: TG107\n"
        "        return 1\n"
        "f = rt.async_(body)\n"
        "rt.run()\n"
        "print(f.value)\n"
    )
    assert not findings_for(src, "TG107")


# -- suppression syntax ------------------------------------------------------------


# -- TG108: task body swallows the typed fault hierarchy ---------------------------

TG108_BARE = """
def body(x):
    try:
        return 1.0 / x
    except:
        return 0.0
f = rt.async_(body, 2)
rt.run()
print(f.value)
"""

TG108_BROAD = """
def body(dep):
    try:
        return dep * 2
    except Exception:
        return None
f = rt.dataflow(body, [g])
rt.run()
print(f.value)
"""

TG108_CLEAN_RERAISE = """
import logging
def body(x):
    try:
        return 1.0 / x
    except Exception:
        logging.warning("task failed")
        raise
f = rt.async_(body, 2)
rt.run()
print(f.value)
"""

TG108_CLEAN_TYPED = """
def body(x):
    try:
        return 1.0 / x
    except ZeroDivisionError:
        return 0.0
f = rt.async_(body, 2)
rt.run()
print(f.value)
"""

TG108_CLEAN_DRIVER = """
f = rt.async_(lambda: 1)
try:
    rt.run()
except Exception:
    print("driver-level handling is where broad catches belong")
print(f.value)
"""


def test_tg108_bare_except_in_task_body():
    found = findings_for(TG108_BARE, "TG108")
    assert len(found) == 1
    assert "bare except" in found[0].message
    assert "FencedEpochError" in found[0].message


def test_tg108_except_exception_in_task_body():
    found = findings_for(TG108_BROAD, "TG108")
    assert len(found) == 1
    assert "Exception" in found[0].message


def test_tg108_broad_tuple_is_flagged():
    src = TG108_BROAD.replace(
        "except Exception:", "except (ValueError, Exception):"
    )
    assert len(findings_for(src, "TG108")) == 1


def test_tg108_reraising_handler_is_exempt():
    assert not findings_for(TG108_CLEAN_RERAISE, "TG108")


def test_tg108_typed_catch_is_clean():
    assert not findings_for(TG108_CLEAN_TYPED, "TG108")


def test_tg108_driver_code_is_exempt():
    assert not findings_for(TG108_CLEAN_DRIVER, "TG108")


def test_tg108_raise_inside_nested_def_does_not_exempt():
    src = """
def body(x):
    try:
        return 1.0 / x
    except Exception:
        def helper():
            raise ValueError("never called")
        return helper
f = rt.async_(body, 2)
rt.run()
print(f.value)
"""
    assert len(findings_for(src, "TG108")) == 1


def test_tg108_noqa_is_honored():
    src = (
        "def body(x):\n"
        "    try:\n"
        "        return 1.0 / x\n"
        "    except Exception:  # noqa: TG108\n"
        "        return 0.0\n"
        "f = rt.async_(body, 2)\n"
        "rt.run()\n"
        "print(f.value)\n"
    )
    assert not findings_for(src, "TG108")


def test_noqa_with_rule_id_suppresses_only_that_rule():
    src = "rt.async_(lambda: 1)  # noqa: TG102\nrt.run()\n"
    assert not lint_source(src)


def test_bare_noqa_suppresses_all_rules_on_line():
    src = "rt.async_(lambda: 1)  # noqa\nrt.run()\n"
    assert not lint_source(src)


def test_noqa_for_other_rule_does_not_suppress():
    src = "rt.async_(lambda: 1)  # noqa: TG104\nrt.run()\n"
    assert rule_ids(src) == ["TG102"]


def test_findings_carry_file_line_and_rule():
    found = lint_source(TG102_DISCARD, "wl.py")
    assert found[0].file == "wl.py"
    assert found[0].line == 2
    assert found[0].format().startswith("wl.py:2:")
