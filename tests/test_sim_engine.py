"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, lambda: fired.append("c"))
        sim.schedule(10, lambda: fired.append("a"))
        sim.schedule(20, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in "abcde":
            sim.schedule(5, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_events_scheduled_during_run(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(10, lambda: chain(n + 1))

        sim.schedule(0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 30


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(10, lambda: fired.append("x"))
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_does_not_disturb_others(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("a"))
        victim = sim.schedule(10, lambda: fired.append("b"))
        sim.schedule(10, lambda: fired.append("c"))
        victim.cancel()
        sim.run()
        assert fired == ["a", "c"]

    def test_pending_events_counts_live_only(self):
        sim = Simulator()
        e1 = sim.schedule(10, lambda: None)
        sim.schedule(20, lambda: None)
        assert sim.pending_events() == 2
        e1.cancel()
        sim.run()
        assert sim.pending_events() == 0


class TestRunControl:
    def test_run_returns_fired_count(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1, lambda: None)
        assert sim.run() == 5

    def test_cancelled_events_not_counted(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.schedule(2, lambda: None).cancel()
        assert sim.run() == 1

    def test_max_events_guard(self):
        sim = Simulator()

        def forever():
            sim.schedule(1, forever)

        sim.schedule(0, forever)
        assert sim.run(max_events=100) == 100

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append(1))
        sim.schedule(6, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_run_until_stops_at_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("early"))
        sim.schedule(100, lambda: fired.append("late"))
        count = sim.run_until(50)
        assert count == 1
        assert fired == ["early"]
        assert sim.now == 50
        sim.run()
        assert fired == ["early", "late"]

    def test_run_until_inclusive_deadline(self):
        sim = Simulator()
        fired = []
        sim.schedule(50, lambda: fired.append("x"))
        sim.run_until(50)
        assert fired == ["x"]

    def test_empty_run(self):
        sim = Simulator()
        assert sim.run() == 0
        assert sim.now == 0
