"""Cross-module integration: the full methodology pipeline on several
workloads, and consistency between independently computed quantities."""

import pytest

from repro.apps.microbench import MicrobenchConfig, run_task_ladder
from repro.apps.stencil1d import stencil_run_fn
from repro.apps.wavefront2d import wavefront_run_fn
from repro.core.characterize import characterize
from repro.core.metrics import GranularityMetrics, MetricInputs
from repro.core.selection import select_by_idle_rate, select_by_min_time
from repro.runtime.runtime import RuntimeConfig


class TestPipelineOnLadder:
    """characterize/selection on the dependency-free micro-benchmark, where
    the 'grain' is tasks-per-run at constant total work."""

    @pytest.fixture(scope="class")
    def report(self):
        total_work = 40_000_000

        def run_fn(cfg: RuntimeConfig, grain: int):
            return run_task_ladder(
                cfg,
                MicrobenchConfig(
                    total_work_ns=total_work,
                    num_tasks=max(1, total_work // grain),
                ),
            )

        return characterize(
            run_fn,
            [500, 5_000, 50_000, 500_000, 5_000_000, 40_000_000],
            platform="haswell",
            num_cores=8,
            repetitions=2,
            seed=4,
            measure_single_core_reference=False,
        )

    def test_u_shape(self, report):
        times = [p.execution_time_s.mean for p in report.points]
        best = min(times)
        assert times[0] > best  # overhead wall
        assert times[-1] > best  # single-task serialization

    def test_selection_rules_agree_roughly(self, report):
        oracle = select_by_min_time(report)
        idle = select_by_idle_rate(report, threshold=0.30)
        assert idle.slowdown <= 1.5

    def test_task_counts_follow_grain(self, report):
        for p in report.points:
            assert p.tasks_executed == max(1, 40_000_000 // p.grain)


class TestCrossWorkloadConsistency:
    def test_metrics_identities_hold_on_real_runs(self):
        """Eq. 1-4 computed two ways (RunResult properties vs the metrics
        module) agree on every workload."""
        runs = [
            stencil_run_fn(1 << 16, 3)(
                RuntimeConfig(num_cores=4, seed=1), 1_024
            ),
            wavefront_run_fn(256, cell_ns=5)(
                RuntimeConfig(num_cores=4, seed=2), 32
            ),
        ]
        for result in runs:
            m = GranularityMetrics.compute(MetricInputs.from_run_result(result))
            assert m.idle_rate == pytest.approx(result.idle_rate, rel=1e-9)
            assert m.task_duration_ns == pytest.approx(
                result.task_duration_ns, rel=1e-6
            )
            # Eq. 3 via worker-time accounting vs per-task counter: the
            # former includes starvation, so it must dominate.
            assert m.task_overhead_ns >= result.task_overhead_ns * 0.99

    def test_trace_agrees_with_counters(self):
        """The trace's per-worker exec sums must equal the exec counter."""
        from repro.apps.stencil1d import StencilConfig, build_stencil_graph
        from repro.runtime.runtime import Runtime

        rt = Runtime(RuntimeConfig(num_cores=4, seed=3, trace=True))
        build_stencil_graph(
            rt, StencilConfig(total_points=1 << 14, partition_points=512,
                              time_steps=3)
        )
        result = rt.run()
        trace = rt.trace
        assert trace is not None
        trace_exec = sum(p.duration_ns for p in trace.phases)
        assert trace_exec == int(result.cumulative_exec_ns)
        assert trace.task_count == result.tasks_executed
        assert len(trace.steals) == int(
            result.counters.get("/threads/count/stolen")
        )

    def test_interval_samples_sum_to_run_totals(self):
        """Interval deltas of monotonic counters must sum to the final
        values (no events lost between samples)."""
        from repro.apps.stencil1d import StencilConfig, build_stencil_graph
        from repro.runtime.runtime import Runtime

        rt = Runtime(RuntimeConfig(num_cores=4, seed=5))
        build_stencil_graph(
            rt, StencilConfig(total_points=1 << 16, partition_points=1_024,
                              time_steps=4)
        )
        result = rt.run(sample_interval_ns=20_000)
        sampled_tasks = sum(
            s.get("/threads/count/cumulative") for s in rt.sampler.samples
        )
        # The final partial interval after the last sample is not collected,
        # so the sampled sum can be short, never over.
        assert sampled_tasks <= result.tasks_executed
        assert sampled_tasks >= result.tasks_executed * 0.5
