"""Unit tests for repro.util.stats — the paper's mean/stddev/COV machinery."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import (
    SampleStats,
    cov,
    describe,
    mean,
    percentiles,
    quantile,
    stddev,
)


class TestMean:
    def test_single(self):
        assert mean([4.0]) == 4.0

    def test_uniform(self):
        assert mean([2.0, 2.0, 2.0]) == 2.0

    def test_mixed(self):
        assert mean([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStddev:
    def test_single_sample_is_zero(self):
        assert stddev([7.0]) == 0.0

    def test_known_value(self):
        # Sample stddev (ddof=1) of 2,4,4,4,5,5,7,9 is ~2.138.
        samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert stddev(samples) == pytest.approx(2.13809, abs=1e-4)

    def test_constant_series(self):
        assert stddev([3.0] * 10) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stddev([])


class TestCov:
    def test_constant_series(self):
        assert cov([5.0, 5.0, 5.0]) == 0.0

    def test_zero_mean(self):
        # Event counts that never fire: COV defined as 0.
        assert cov([0.0, 0.0]) == 0.0

    def test_known_value(self):
        samples = [9.0, 10.0, 11.0]
        assert cov(samples) == pytest.approx(1.0 / 10.0, rel=1e-9)

    def test_negative_mean_uses_absolute(self):
        assert cov([-9.0, -10.0, -11.0]) == pytest.approx(0.1, rel=1e-9)


class TestSampleStats:
    def test_from_samples_fields(self):
        stats = SampleStats.from_samples([1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.stddev == pytest.approx(1.0)
        assert stats.cov == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SampleStats.from_samples([])

    def test_within_stddev_true(self):
        stats = SampleStats.from_samples([1.70, 1.72, 1.74])
        # The paper's criterion: 1.75 s vs min 1.71 s within stddev 0.03.
        assert stats.within_stddev(stats.mean + stats.stddev * 0.99)

    def test_within_stddev_false(self):
        stats = SampleStats.from_samples([1.70, 1.72, 1.74])
        assert not stats.within_stddev(stats.mean + stats.stddev * 1.5)

    def test_within_stddev_symmetric(self):
        stats = SampleStats.from_samples([10.0, 12.0])
        assert stats.within_stddev(stats.mean - stats.stddev / 2)

    def test_describe_is_alias(self):
        assert describe([1.0, 2.0]) == SampleStats.from_samples([1.0, 2.0])

    def test_stats_are_finite(self):
        stats = describe([1e-12, 1e12])
        assert math.isfinite(stats.cov)
        assert math.isfinite(stats.stddev)


# ---------------------------------------------------------------------------
# nearest-rank quantiles (the QoS layer's p50/p99/p999 machinery)
# ---------------------------------------------------------------------------

_samples = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    min_size=1,
    max_size=200,
)
_qs = st.floats(min_value=1e-6, max_value=1.0)


class TestQuantile:
    def test_known_decile_values(self):
        xs = list(range(1, 11))  # 1..10
        assert quantile(xs, 0.1) == 1
        assert quantile(xs, 0.5) == 5
        assert quantile(xs, 0.51) == 6
        assert quantile(xs, 0.99) == 10
        assert quantile(xs, 1.0) == 10

    def test_order_independent(self):
        assert quantile([3, 1, 2], 0.5) == quantile([1, 2, 3], 0.5) == 2

    def test_singleton(self):
        assert quantile([7.0], 0.5) == 7.0
        assert quantile([7.0], 1.0) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.1])
    def test_out_of_range_q_raises(self, q):
        with pytest.raises(ValueError):
            quantile([1.0], q)

    @given(_samples, _qs)
    @settings(max_examples=150, deadline=None)
    def test_result_is_a_sample(self, xs, q):
        # No interpolation: every reported quantile was actually observed.
        assert quantile(xs, q) in xs

    @given(_samples, _qs)
    @settings(max_examples=150, deadline=None)
    def test_nearest_rank_definition(self, xs, q):
        # The smallest x with at least ceil(q*n) samples <= x (same float
        # guard as the implementation: plain ceil misranks e.g. 0.999*1000).
        value = quantile(xs, q)
        need = max(1, math.ceil(q * len(xs) - 1e-9))
        assert sum(1 for x in xs if x <= value) >= need
        # ... and no strictly smaller sample satisfies the rank.
        smaller = [x for x in xs if x < value]
        assert sum(1 for x in xs if x <= max(smaller, default=value)) < need or not smaller

    @given(_samples, _qs, _qs)
    @settings(max_examples=150, deadline=None)
    def test_monotone_in_q(self, xs, q1, q2):
        lo, hi = sorted((q1, q2))
        assert quantile(xs, lo) <= quantile(xs, hi)

    @given(_samples)
    @settings(max_examples=100, deadline=None)
    def test_extremes(self, xs):
        assert quantile(xs, 1.0) == max(xs)
        assert quantile(xs, 1.0 / (len(xs) + 1)) == min(xs)


class TestPercentiles:
    def test_default_triple(self):
        xs = list(range(1, 1001))
        got = percentiles(xs)
        assert got == {50.0: 500, 99.0: 990, 99.9: 999}

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentiles([])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentiles([1.0], [0.0])
        with pytest.raises(ValueError):
            percentiles([1.0], [100.5])

    @given(_samples, st.lists(st.floats(min_value=0.001, max_value=100.0), min_size=1, max_size=8))
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_quantile(self, xs, ps):
        got = percentiles(xs, ps)
        for p in ps:
            assert got[p] == quantile(xs, p / 100.0)
