"""Unit tests for repro.util.stats — the paper's mean/stddev/COV machinery."""

import math

import pytest

from repro.util.stats import SampleStats, cov, describe, mean, stddev


class TestMean:
    def test_single(self):
        assert mean([4.0]) == 4.0

    def test_uniform(self):
        assert mean([2.0, 2.0, 2.0]) == 2.0

    def test_mixed(self):
        assert mean([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestStddev:
    def test_single_sample_is_zero(self):
        assert stddev([7.0]) == 0.0

    def test_known_value(self):
        # Sample stddev (ddof=1) of 2,4,4,4,5,5,7,9 is ~2.138.
        samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        assert stddev(samples) == pytest.approx(2.13809, abs=1e-4)

    def test_constant_series(self):
        assert stddev([3.0] * 10) == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stddev([])


class TestCov:
    def test_constant_series(self):
        assert cov([5.0, 5.0, 5.0]) == 0.0

    def test_zero_mean(self):
        # Event counts that never fire: COV defined as 0.
        assert cov([0.0, 0.0]) == 0.0

    def test_known_value(self):
        samples = [9.0, 10.0, 11.0]
        assert cov(samples) == pytest.approx(1.0 / 10.0, rel=1e-9)

    def test_negative_mean_uses_absolute(self):
        assert cov([-9.0, -10.0, -11.0]) == pytest.approx(0.1, rel=1e-9)


class TestSampleStats:
    def test_from_samples_fields(self):
        stats = SampleStats.from_samples([1.0, 2.0, 3.0])
        assert stats.n == 3
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.stddev == pytest.approx(1.0)
        assert stats.cov == pytest.approx(0.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            SampleStats.from_samples([])

    def test_within_stddev_true(self):
        stats = SampleStats.from_samples([1.70, 1.72, 1.74])
        # The paper's criterion: 1.75 s vs min 1.71 s within stddev 0.03.
        assert stats.within_stddev(stats.mean + stats.stddev * 0.99)

    def test_within_stddev_false(self):
        stats = SampleStats.from_samples([1.70, 1.72, 1.74])
        assert not stats.within_stddev(stats.mean + stats.stddev * 1.5)

    def test_within_stddev_symmetric(self):
        stats = SampleStats.from_samples([10.0, 12.0])
        assert stats.within_stddev(stats.mean - stats.stddev / 2)

    def test_describe_is_alias(self):
        assert describe([1.0, 2.0]) == SampleStats.from_samples([1.0, 2.0])

    def test_stats_are_finite(self):
        stats = describe([1e-12, 1e12])
        assert math.isfinite(stats.cov)
        assert math.isfinite(stats.stddev)
