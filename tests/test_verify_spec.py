"""WorkloadSpec: seeded generation, validation, and the JSON round-trip."""

import json

import pytest

from repro.taskbench.patterns import PATTERNS
from repro.verify.spec import (
    COARSE_GRAIN_NS,
    GENERATOR_SCHEDULERS,
    WorkloadSpec,
    generate_spec,
)


def test_generation_is_deterministic():
    assert generate_spec(42) == generate_spec(42)
    assert generate_spec(41) != generate_spec(42)


def test_generated_specs_are_always_valid():
    # __post_init__ raises on any invalid combination; 200 seeds must pass.
    for seed in range(200):
        spec = generate_spec(seed)
        assert spec.total_tasks >= 1
        assert spec.size() >= 1


def test_corpus_is_diverse():
    """The first 50 seeds must exercise the interesting axes, or the fuzz
    net silently stops covering them."""
    specs = [generate_spec(seed) for seed in range(50)]
    patterns = {name for s in specs for name in s.patterns}
    assert len(patterns) >= 6  # most of the 8-pattern catalogue
    assert {s.scheduler for s in specs} == set(GENERATOR_SCHEDULERS) | {"qos"}
    assert any(s.use_priorities for s in specs)
    assert any(not s.use_priorities for s in specs)
    assert any(s.num_localities > 1 for s in specs)
    assert any(s.faults_active for s in specs)
    assert any(s.kernel == "imbalanced" for s in specs)
    assert any(len(s.patterns) > 1 for s in specs)
    assert any(s.use_qos for s in specs)
    assert any(not s.use_qos for s in specs)


def test_qos_specs_always_run_the_qos_scheduler():
    for seed in range(100):
        spec = generate_spec(seed)
        if spec.use_qos:
            assert spec.scheduler == "qos"
            assert spec.num_qos_classes in (2, 3)
        else:
            assert spec.scheduler in GENERATOR_SCHEDULERS
    qos_specs = [s for s in (generate_spec(k) for k in range(50)) if s.use_qos]
    assert {s.num_qos_classes for s in qos_specs} == {2, 3}


def test_from_dict_defaults_the_qos_fields():
    # reproducer JSONs written before the QoS fields existed must load
    spec = generate_spec(7)
    data = spec.to_dict()
    del data["use_qos"]
    del data["num_qos_classes"]
    loaded = WorkloadSpec.from_dict(data)
    assert loaded.use_qos is False
    assert loaded.num_qos_classes == 2


def test_json_round_trip():
    spec = generate_spec(7)
    assert WorkloadSpec.from_json(spec.to_json()) == spec
    # and via plain dicts, as the reproducer files store it
    assert WorkloadSpec.from_dict(json.loads(spec.to_json())) == spec


def test_total_tasks_counts_every_phase():
    spec = WorkloadSpec(patterns=("trivial", "serial_chain"), width=4, steps=3)
    assert spec.total_tasks == 2 * 4 * 3


def test_phase_seeds_differ_even_for_repeated_patterns():
    spec = WorkloadSpec(patterns=("random_nearest", "random_nearest"), width=4)
    tbs = spec.taskbench_specs()
    assert tbs[0].seed != tbs[1].seed


def test_size_counts_each_complication_once():
    base = WorkloadSpec(width=2, steps=1, grain_ns=COARSE_GRAIN_NS)
    assert base.size() == 2
    loaded = WorkloadSpec(
        width=2,
        steps=1,
        grain_ns=500,
        use_priorities=True,
        num_localities=2,
        drop_rate=0.05,
        use_qos=True,
    )
    # 2 tasks + fine grain + priorities + extra locality + faults + qos
    assert loaded.size() == 7


def test_faults_only_count_on_the_wire():
    # drop_rate without a second locality never touches anything
    spec = WorkloadSpec(width=2, steps=1, drop_rate=0.5, num_localities=1)
    assert not spec.faults_active


@pytest.mark.parametrize(
    "bad",
    [
        {"patterns": ()},
        {"patterns": ("no-such-pattern",)},
        {"patterns": ("fft",), "width": 3},  # fft needs a power of two
        {"steps": 0},
        {"grain_ns": 0},
        {"kernel": "gpu"},
        {"num_localities": 0},
        {"num_localities": 8, "width": 4},
        {"placement": "random"},
        {"drop_rate": 1.0},
        {"duplicate_rate": -0.1},
        {"num_qos_classes": 1},
        {"num_qos_classes": 4},
    ],
)
def test_validation_rejects(bad):
    with pytest.raises(ValueError):
        WorkloadSpec(**bad)


def test_generator_widths_admit_fft():
    # every generated width must be a power of two (fft admissibility)
    for seed in range(100):
        w = generate_spec(seed).width
        assert w & (w - 1) == 0


def test_pattern_catalogue_is_the_generators_universe():
    # guard: a new pattern added to taskbench should enter the corpus
    from repro.verify.spec import GENERATOR_PATTERNS

    assert set(GENERATOR_PATTERNS) == set(PATTERNS)
