"""Unit tests for counter kinds, the registry, snapshots, and sampling."""

import pytest

from repro.counters.counter import (
    AverageCounter,
    DerivedCounter,
    RawCounter,
    ValueCounter,
)
from repro.counters.interval import IntervalSampler
from repro.counters.registry import CounterRegistry


class TestRawCounter:
    def test_starts_at_zero(self):
        assert RawCounter("/t/c").get_value() == 0

    def test_increment(self):
        c = RawCounter("/t/c")
        c.increment()
        c.increment(5)
        assert c.get_value() == 6

    def test_reset(self):
        c = RawCounter("/t/c")
        c.increment(3)
        c.reset()
        assert c.get_value() == 0


class TestValueCounter:
    def test_set_get(self):
        c = ValueCounter("/t/v")
        c.set_value(2.5)
        assert c.get_value() == 2.5

    def test_source_backed(self):
        state = {"x": 1.0}
        c = ValueCounter("/t/v", source=lambda: state["x"])
        assert c.get_value() == 1.0
        state["x"] = 9.0
        assert c.get_value() == 9.0

    def test_source_backed_rejects_set(self):
        c = ValueCounter("/t/v", source=lambda: 0.0)
        with pytest.raises(RuntimeError):
            c.set_value(1.0)

    def test_source_backed_reset_is_noop(self):
        c = ValueCounter("/t/v", source=lambda: 7.0)
        c.reset()
        assert c.get_value() == 7.0


class TestAverageCounter:
    def test_empty_reports_zero(self):
        assert AverageCounter("/t/a").get_value() == 0.0

    def test_average(self):
        c = AverageCounter("/t/a")
        for v in (10.0, 20.0, 30.0):
            c.add_sample(v)
        assert c.get_value() == 20.0

    def test_add_bulk(self):
        c = AverageCounter("/t/a")
        c.add_bulk(100.0, 4)
        assert c.get_value() == 25.0

    def test_reset(self):
        c = AverageCounter("/t/a")
        c.add_sample(5.0)
        c.reset()
        assert c.get_value() == 0.0
        assert c.count == 0


class TestDerivedCounter:
    def test_computed_on_read(self):
        base = RawCounter("/t/c")
        derived = DerivedCounter("/t/d", lambda: base.get_value() * 2)
        base.increment(3)
        assert derived.get_value() == 6


class TestRegistry:
    def test_register_and_get_by_short_name(self):
        reg = CounterRegistry()
        c = reg.raw("/threads/count/cumulative")
        assert reg.get("/threads/count/cumulative") is c
        assert reg.get("/threads{locality#0/total}/count/cumulative") is c

    def test_duplicate_registration_raises(self):
        reg = CounterRegistry()
        reg.raw("/threads/count/cumulative")
        with pytest.raises(ValueError, match="already registered"):
            reg.raw("/threads/count/cumulative")

    def test_wildcard_registration_raises(self):
        reg = CounterRegistry()
        with pytest.raises(ValueError, match="wildcard"):
            reg.raw("/threads{locality#0/worker-thread#*}/count/cumulative")

    def test_missing_counter_raises_keyerror(self):
        with pytest.raises(KeyError):
            CounterRegistry().get("/threads/idle-rate")

    def test_contains(self):
        reg = CounterRegistry()
        reg.raw("/threads/count/cumulative")
        assert "/threads/count/cumulative" in reg
        assert "/threads/idle-rate" not in reg
        assert "not a name" not in reg

    def test_query_wildcard(self):
        reg = CounterRegistry()
        for i in range(4):
            reg.raw(f"/threads{{locality#0/worker-thread#{i}}}/count/cumulative")
        reg.raw("/threads/count/cumulative")
        found = list(
            reg.query("/threads{locality#0/worker-thread#*}/count/cumulative")
        )
        assert len(found) == 4

    def test_len_and_iter(self):
        reg = CounterRegistry()
        reg.raw("/a/b")
        reg.raw("/a/c")
        assert len(reg) == 2
        assert {c.name for c in reg} == {
            "/a{locality#0/total}/b",
            "/a{locality#0/total}/c",
        }

    def test_reset_all(self):
        reg = CounterRegistry()
        c = reg.raw("/a/b")
        c.increment(5)
        reg.reset_all()
        assert c.get_value() == 0


class TestSnapshots:
    def test_snapshot_reads_values(self):
        reg = CounterRegistry()
        c = reg.raw("/a/b")
        c.increment(7)
        snap = reg.snapshot(timestamp_ns=100)
        assert snap.get("/a/b") == 7
        assert snap.timestamp_ns == 100

    def test_snapshot_immutable_wrt_later_changes(self):
        reg = CounterRegistry()
        c = reg.raw("/a/b")
        snap = reg.snapshot()
        c.increment(5)
        assert snap.get("/a/b") == 0

    def test_delta_of_raw(self):
        reg = CounterRegistry()
        c = reg.raw("/a/b")
        c.increment(3)
        first = reg.snapshot(10)
        c.increment(4)
        second = reg.snapshot(25)
        delta = second.delta(first)
        assert delta.get("/a/b") == 4
        assert delta.timestamp_ns == 15

    def test_delta_of_average_is_exact(self):
        reg = CounterRegistry()
        a = reg.average("/a/avg")
        a.add_sample(10.0)
        first = reg.snapshot(0)
        a.add_sample(30.0)
        a.add_sample(50.0)
        second = reg.snapshot(1)
        # The interval average must be (30+50)/2, not a difference of ratios.
        assert second.delta(first).get("/a/avg") == 40.0

    def test_get_default_for_missing(self):
        reg = CounterRegistry()
        snap = reg.snapshot()
        assert snap.get("/no/counter", default=-1.0) == -1.0


class TestIntervalSampler:
    def test_sampling_produces_deltas(self):
        reg = CounterRegistry()
        c = reg.raw("/a/b")
        sampler = IntervalSampler(reg)
        sampler.start(0)
        c.increment(5)
        s1 = sampler.sample(100)
        c.increment(2)
        s2 = sampler.sample(250)
        assert s1.get("/a/b") == 5
        assert s2.get("/a/b") == 2
        assert s1.length_ns == 100
        assert s2.length_ns == 150

    def test_sample_without_start_self_starts(self):
        reg = CounterRegistry()
        sampler = IntervalSampler(reg)
        s = sampler.sample(50)
        assert s.start_ns == 50
        assert s.end_ns == 50

    def test_idle_rate_series(self):
        reg = CounterRegistry()
        state = {"exec": 0.0, "func": 0.0}
        reg.derived("/threads/time/cumulative", lambda: state["exec"])
        reg.derived("/threads/time/cumulative-func", lambda: state["func"])
        sampler = IntervalSampler(reg)
        sampler.start(0)
        state["exec"], state["func"] = 50.0, 100.0
        sampler.sample(10)
        state["exec"], state["func"] = 50.0 + 90.0, 100.0 + 100.0
        sampler.sample(20)
        series = sampler.idle_rate_series()
        assert series[0] == (10, pytest.approx(0.5))
        assert series[1] == (20, pytest.approx(0.1))


class TestSnapshotMismatch:
    def test_delta_over_different_counter_sets_raises(self):
        reg = CounterRegistry()
        reg.raw("/a/b").increment(1)
        first = reg.snapshot(0)
        reg.raw("/a/c").increment(2)
        second = reg.snapshot(10)
        with pytest.raises(ValueError) as excinfo:
            second.delta(first)
        # The error must name the offending counters, both directions.
        message = str(excinfo.value)
        assert "/a{locality#0/total}/c" in message
        assert "extra" in message

    def test_delta_names_missing_counters(self):
        reg_a = CounterRegistry()
        reg_a.raw("/a/b")
        reg_a.raw("/a/gone")
        earlier = reg_a.snapshot(0)
        reg_b = CounterRegistry()
        reg_b.raw("/a/b")
        later = reg_b.snapshot(5)
        with pytest.raises(ValueError) as excinfo:
            later.delta(earlier)
        message = str(excinfo.value)
        assert "/a{locality#0/total}/gone" in message
        assert "missing" in message

    def test_matching_sets_still_subtract(self):
        reg = CounterRegistry()
        c = reg.raw("/a/b")
        c.increment(3)
        first = reg.snapshot(0)
        c.increment(4)
        assert reg.snapshot(1).delta(first).get("/a/b") == 4


class TestLocalityAggregation:
    def _registry(self):
        reg = CounterRegistry()
        for loc, value in enumerate((5, 7, 11)):
            reg.raw(f"/parcels{{locality#{loc}/total}}/count/sent").increment(
                value
            )
        reg.raw("/parcels{locality#1/total}/count/received").increment(100)
        return reg

    def test_total_sums_across_localities(self):
        reg = self._registry()
        assert reg.total("/parcels{locality#*/total}/count/sent") == 23

    def test_total_of_nothing_is_zero(self):
        assert CounterRegistry().total("/x{locality#*/total}/y") == 0.0

    def test_per_locality(self):
        reg = self._registry()
        assert reg.per_locality("/parcels{locality#*/total}/count/sent") == {
            0: 5.0,
            1: 7.0,
            2: 11.0,
        }
