"""Unit tests for the HPX-style counter-name grammar."""

import pytest

from repro.counters.names import (
    WELL_KNOWN_COUNTERS,
    CounterName,
    parse_counter_name,
)


class TestParsing:
    def test_abbreviated_name_expands_to_total(self):
        name = parse_counter_name("/threads/idle-rate")
        assert name.object_name == "threads"
        assert name.counter_path == "idle-rate"
        assert name.parent_instance == "locality"
        assert name.parent_index == 0
        assert name.instance == "total"
        assert name.instance_index is None

    def test_full_name(self):
        name = parse_counter_name(
            "/threads{locality#0/worker-thread#3}/count/pending-accesses"
        )
        assert name.parent_index == 0
        assert name.instance == "worker-thread"
        assert name.instance_index == 3
        assert name.counter_path == "count/pending-accesses"

    def test_nested_counter_path(self):
        name = parse_counter_name("/threads/time/average-overhead")
        assert name.counter_path == "time/average-overhead"

    def test_parameters(self):
        name = parse_counter_name("/threads/idle-rate@interval=100")
        assert name.parameters == "interval=100"

    def test_wildcard_instance(self):
        name = parse_counter_name(
            "/threads{locality#0/worker-thread#*}/count/cumulative"
        )
        assert name.is_wildcard
        assert name.instance_index is None

    def test_wildcard_locality(self):
        name = parse_counter_name("/threads{locality#*/total}/idle-rate")
        assert name.is_wildcard
        assert name.parent_index is None

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "threads/idle-rate",
            "/",
            "/threads",
            "/threads{}/idle-rate",
            "/threads{locality}/idle-rate",
            "/1threads/idle-rate",
        ],
    )
    def test_malformed_names_raise(self, bad):
        with pytest.raises(ValueError):
            parse_counter_name(bad)


class TestCanonical:
    def test_round_trip_abbreviated(self):
        name = parse_counter_name("/threads/idle-rate")
        assert name.canonical() == "/threads{locality#0/total}/idle-rate"
        assert parse_counter_name(name.canonical()) == name

    def test_round_trip_worker_instance(self):
        text = "/threads{locality#0/worker-thread#7}/time/cumulative"
        assert parse_counter_name(text).canonical() == text

    def test_short_form(self):
        name = parse_counter_name(
            "/threads{locality#0/worker-thread#7}/time/cumulative"
        )
        assert name.short() == "/threads/time/cumulative"

    def test_parameters_preserved(self):
        text = "/threads{locality#0/total}/idle-rate@x=1"
        assert parse_counter_name(text).canonical() == text


class TestMatching:
    def test_exact_match(self):
        query = parse_counter_name("/threads/idle-rate")
        assert query.matches(parse_counter_name("/threads/idle-rate"))

    def test_wildcard_matches_all_workers(self):
        query = parse_counter_name(
            "/threads{locality#0/worker-thread#*}/count/cumulative"
        )
        for i in range(4):
            concrete = parse_counter_name(
                f"/threads{{locality#0/worker-thread#{i}}}/count/cumulative"
            )
            assert query.matches(concrete)

    def test_wildcard_does_not_match_total(self):
        query = parse_counter_name(
            "/threads{locality#0/worker-thread#*}/count/cumulative"
        )
        total = parse_counter_name("/threads/count/cumulative")
        assert not query.matches(total)

    def test_different_counter_path_no_match(self):
        query = parse_counter_name("/threads/idle-rate")
        assert not query.matches(parse_counter_name("/threads/count/cumulative"))

    def test_different_object_no_match(self):
        query = parse_counter_name("/threads/idle-rate")
        assert not query.matches(parse_counter_name("/runtime/idle-rate"))


class TestWellKnown:
    def test_all_well_known_names_parse(self):
        for text in WELL_KNOWN_COUNTERS:
            name = parse_counter_name(text)
            assert not name.is_wildcard

    def test_papers_counters_present(self):
        # The counters the paper's metrics depend on (Sec. II-A).
        for required in (
            "/threads/idle-rate",
            "/threads/time/average",
            "/threads/time/average-overhead",
            "/threads/count/cumulative",
            "/threads/count/pending-accesses",
            "/threads/count/pending-misses",
            "/threads/count/cumulative-phases",
            "/threads/time/average-phase",
            "/threads/time/average-phase-overhead",
        ):
            assert required in WELL_KNOWN_COUNTERS


class TestLocalityAddressing:
    """First-class locality#N prefixes (the repro.dist registry uses them)."""

    def test_locality_property(self):
        name = parse_counter_name("/parcels{locality#3/total}/count/sent")
        assert name.locality == 3

    def test_locality_property_default_prefix(self):
        assert parse_counter_name("/threads/idle-rate").locality == 0

    def test_locality_property_wildcard_is_none(self):
        name = parse_counter_name("/parcels{locality#*/total}/count/sent")
        assert name.locality is None

    def test_with_locality_readdresses(self):
        name = parse_counter_name("/threads/idle-rate").with_locality(5)
        assert name.locality == 5
        assert name.canonical() == "/threads{locality#5/total}/idle-rate"

    def test_with_locality_none_is_wildcard(self):
        name = parse_counter_name("/threads/idle-rate").with_locality(None)
        assert name.is_wildcard
        assert name.matches(
            parse_counter_name("/threads{locality#7/total}/idle-rate")
        )

    def test_with_locality_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_counter_name("/threads/idle-rate").with_locality(-1)

    def test_wildcard_canonical_round_trip(self):
        text = "/parcels{locality#*/total}/count/bytes-sent"
        name = parse_counter_name(text)
        assert name.canonical() == text
        assert parse_counter_name(name.canonical()) == name

    def test_wildcard_locality_discovery(self):
        from repro.counters.registry import CounterRegistry

        reg = CounterRegistry()
        for loc in range(3):
            reg.raw(f"/parcels{{locality#{loc}/total}}/count/sent")
        reg.raw("/parcels{locality#1/total}/count/received")
        assert len(list(reg.query("/parcels{locality#*/total}/count/sent"))) == 3
        found = reg.per_locality("/parcels{locality#*/total}/count/sent")
        assert sorted(found) == [0, 1, 2]
