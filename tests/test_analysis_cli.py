"""The ``python -m repro.analysis`` CLI: exit codes, formats, self-check.

The self-check is the CI wiring the tentpole asks for: the analyzer runs
over every shipped example and app with zero findings required (also
exposed as ``make lint``).
"""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.analysis.cli import main

REPO = pathlib.Path(__file__).resolve().parent.parent

VIOLATION = """\
from repro import Runtime, Future

rt = Runtime(num_cores=2)
never = Future("never")
g = rt.dataflow(lambda x: x, [never])
rt.async_(lambda: 1)
rt.run()
print(g.value)
"""

CLEAN = """\
from repro import Runtime

rt = Runtime(num_cores=2)
parts = [rt.async_(lambda i=i: i) for i in range(4)]
total = rt.dataflow(lambda *xs: sum(xs), parts)
rt.run()
print(total.value)
"""


def test_exit_one_on_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "TG105" in out and "TG102" in out
    assert f"{bad}:4:" in out  # file:line anchors


def test_exit_zero_on_clean_file(tmp_path, capsys):
    good = tmp_path / "good.py"
    good.write_text(CLEAN)
    assert main([str(good)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_json_format_is_machine_readable(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    rules = {f["rule"] for f in payload["findings"]}
    assert "TG105" in rules
    first = payload["findings"][0]
    assert set(first) >= {"rule", "severity", "message", "file", "line", "col"}


def test_select_and_ignore_filter_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    assert main([str(bad), "--select", "TG105"]) == 1
    out = capsys.readouterr().out
    assert "TG105" in out and "TG102" not in out
    assert main([str(bad), "--ignore", "TG105,TG102"]) == 0


def test_select_and_ignore_are_prefix_matched(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    # 'TG' selects the whole static-lint family
    assert main([str(bad), "--select", "TG"]) == 1
    out = capsys.readouterr().out
    assert "TG105" in out and "TG102" in out
    # a prefix matching only runtime-reported families filters lint out
    assert main([str(bad), "--select", "PF"]) == 0
    assert main([str(bad), "--ignore", "TG"]) == 0
    # prefix and exact entries compose
    assert main([str(bad), "--ignore", "TG10"]) == 0


def test_min_severity_threshold(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    assert main([str(bad), "--min-severity", "error"]) == 1
    out = capsys.readouterr().out
    assert "TG105" in out and "TG102" not in out  # TG102 is a warning


def test_list_rules_catalogue(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "TG101", "TG102", "TG103", "TG104", "TG105", "TG106",
        "GA201", "DC301", "PF401", "PF407",
    ):
        assert rule_id in out


def test_no_paths_is_usage_error(capsys):
    assert main([]) == 2


def test_unknown_rule_id_is_usage_error(tmp_path, capsys):
    # A typo'd --select must not silently report "clean".
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    assert main([str(bad), "--select", "TG999"]) == 2
    assert "unknown rule ID: TG999" in capsys.readouterr().err
    assert main([str(bad), "--ignore", "TG102,TGXX"]) == 2


def test_missing_file_is_usage_error(capsys):
    assert main(["/nonexistent/nope.py"]) == 2


def test_directory_expansion(tmp_path, capsys):
    (tmp_path / "a.py").write_text(CLEAN)
    (tmp_path / "sub").mkdir()
    (tmp_path / "sub" / "b.py").write_text(VIOLATION)
    assert main([str(tmp_path)]) == 1
    assert "2 file(s)" in capsys.readouterr().out


def test_module_entrypoint_runs(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION)
    env_path = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(bad)],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "TG105" in proc.stdout


# -- the CI self-check -------------------------------------------------------------


@pytest.mark.parametrize("target", ["examples", "src/repro/apps"])
def test_shipped_workloads_are_lint_clean(target, capsys):
    """Every shipped example and app must pass the analyzer with 0 findings."""
    assert main([str(REPO / target)]) == 0, capsys.readouterr().out
