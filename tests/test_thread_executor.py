"""Unit tests for the real-thread executor (API parity, no timing claims)."""

import threading

import pytest

from repro.runtime.future import Future
from repro.runtime.task import Task
from repro.runtime.thread_executor import ThreadRuntime, host_platform


class TestHostPlatform:
    def test_topology_fields(self):
        spec = host_platform(4)
        assert spec.cores == 4
        assert spec.numa_domains == 1

    def test_multi_domain(self):
        spec = host_platform(8, numa_domains=2)
        assert spec.numa_domains == 2


class TestLifecycle:
    def test_context_manager_starts_and_stops(self):
        with ThreadRuntime(num_workers=2) as rt:
            f = rt.async_(lambda: 1)
            assert rt.wait(f, timeout_s=5) == 1
        assert rt._threads == []

    def test_double_start_rejected(self):
        rt = ThreadRuntime(num_workers=1).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                rt.start()
        finally:
            rt.shutdown()

    def test_spawn_after_shutdown_rejected(self):
        rt = ThreadRuntime(num_workers=1).start()
        rt.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            rt.async_(lambda: 1)

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ThreadRuntime(num_workers=0)


class TestExecution:
    def test_many_tasks_all_complete(self):
        with ThreadRuntime(num_workers=4) as rt:
            futures = [rt.async_(lambda i=i: i * i) for i in range(200)]
            rt.wait_idle(timeout_s=30)
            assert [f.value for f in futures] == [i * i for i in range(200)]

    def test_tasks_actually_run_concurrently_across_threads(self):
        seen_threads = set()
        barrier = threading.Barrier(2, timeout=10)

        def body():
            seen_threads.add(threading.current_thread().name)
            barrier.wait()

        with ThreadRuntime(num_workers=2) as rt:
            rt.async_(body)
            rt.async_(body)
            rt.wait_idle(timeout_s=30)
        assert len(seen_threads) == 2

    def test_dataflow(self):
        with ThreadRuntime(num_workers=2) as rt:
            a = rt.async_(lambda: 6)
            b = rt.async_(lambda: 7)
            c = rt.dataflow(lambda x, y: x * y, [a, b])
            assert rt.wait(c, timeout_s=10) == 42

    def test_dataflow_chain(self):
        with ThreadRuntime(num_workers=3) as rt:
            f = rt.async_(lambda: 1)
            for _ in range(10):
                f = rt.dataflow(lambda x: x + 1, [f])
            assert rt.wait(f, timeout_s=10) == 11

    def test_exception_propagates_to_future(self):
        def boom():
            raise ValueError("thread task failed")

        with ThreadRuntime(num_workers=1) as rt:
            f = rt.async_(boom)
            rt.wait_idle(timeout_s=10)
            assert f.has_exception

    def test_dataflow_dependency_failure(self):
        with ThreadRuntime(num_workers=2) as rt:
            bad = rt.async_(lambda: 1 / 0)
            dependent = rt.dataflow(lambda x: x, [bad])
            rt.wait_idle(timeout_s=10)
            assert dependent.has_exception

    def test_generator_tasks_rejected_without_killing_worker(self):
        def gen():
            yield Future()

        with ThreadRuntime(num_workers=1) as rt:
            t = Task(gen)
            rt.spawn(t)
            rt.wait_idle(timeout_s=10)
            assert isinstance(t.result, NotImplementedError)
            assert rt.registry.get("/threads/count/errors").get_value() == 1
            # The (single) worker survived and keeps serving tasks.
            f = rt.async_(lambda: "alive")
            assert rt.wait(f, timeout_s=10) == "alive"

    def test_wait_timeout(self):
        with ThreadRuntime(num_workers=1) as rt:
            never = Future("never")
            with pytest.raises(TimeoutError):
                rt.wait(never, timeout_s=0.05)


class TestCounters:
    def test_task_and_queue_counters(self):
        with ThreadRuntime(num_workers=2) as rt:
            for _ in range(20):
                rt.async_(lambda: None)
            rt.wait_idle(timeout_s=30)
            assert rt.registry.get("/threads/count/cumulative").get_value() == 20
            assert (
                rt.registry.get("/threads/count/pending-accesses").get_value() > 0
            )
            assert rt.registry.get("/threads/time/cumulative").get_value() >= 0
