"""Unit tests for the grain-size selection rules on synthetic reports."""

import pytest

from repro.core.characterize import CharacterizationReport, GrainPoint
from repro.core.metrics import GranularityMetrics, MetricInputs
from repro.core.selection import (
    select_by_idle_rate,
    select_by_min_time,
    select_by_pending_accesses,
)
from repro.util.stats import SampleStats


def make_point(
    grain: int,
    time_s: float,
    idle: float,
    accesses: float,
    stddev: float = 0.0,
) -> GrainPoint:
    """A synthetic grain point with controlled headline values."""
    samples = [time_s - stddev, time_s + stddev] if stddev else [time_s]
    metrics = GranularityMetrics.compute(
        MetricInputs(
            execution_time_ns=time_s * 1e9,
            cumulative_exec_ns=(1 - idle) * 4 * time_s * 1e9,
            cumulative_func_ns=4 * time_s * 1e9,
            tasks_executed=max(1, 1_000_000 // grain),
            num_cores=4,
            pending_accesses=accesses,
        )
    )
    return GrainPoint(
        grain=grain,
        num_cores=4,
        repetitions=len(samples),
        execution_time_s=SampleStats.from_samples(samples),
        idle_rate=SampleStats.from_samples([idle]),
        pending_accesses=SampleStats.from_samples([accesses]),
        pending_misses=SampleStats.from_samples([accesses / 10]),
        task_duration_ns=SampleStats.from_samples([float(grain)]),
        tasks_executed=max(1, 1_000_000 // grain),
        metrics=metrics,
        task_duration_1core_ns=None,
    )


@pytest.fixture
def report() -> CharacterizationReport:
    """A textbook U-shape: best time at grain 10_000."""
    rep = CharacterizationReport("haswell", 4, "priority-local")
    rep.points = [
        make_point(100, 4.00, 0.90, 9_000_000, stddev=0.05),
        make_point(1_000, 2.00, 0.55, 900_000, stddev=0.04),
        # note: two samples [t-d, t+d] have sample stddev d*sqrt(2), so
        # d=0.04 puts 1.75 within one stddev of this point's 1.70 mean.
        make_point(10_000, 1.70, 0.28, 200_000, stddev=0.04),
        make_point(100_000, 1.75, 0.22, 150_000, stddev=0.03),
        make_point(1_000_000, 3.00, 0.70, 400_000, stddev=0.05),
    ]
    return rep


class TestMinTimeOracle:
    def test_picks_global_minimum(self, report):
        out = select_by_min_time(report)
        assert out.grain == 10_000
        assert out.slowdown == 1.0
        assert out.within_one_stddev

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            select_by_min_time(CharacterizationReport("hw", 4, "pl"))


class TestIdleRateRule:
    def test_smallest_grain_under_threshold(self, report):
        out = select_by_idle_rate(report, threshold=0.30)
        assert out.grain == 10_000
        assert out.slowdown == 1.0

    def test_tighter_threshold_picks_coarser_grain(self, report):
        out = select_by_idle_rate(report, threshold=0.25)
        assert out.grain == 100_000
        # 1.75 vs 1.70 with stddev 0.03: the paper's "within one stddev".
        assert out.slowdown == pytest.approx(1.75 / 1.70)
        assert out.within_one_stddev

    def test_no_point_meets_threshold_falls_back(self, report):
        out = select_by_idle_rate(report, threshold=0.05)
        assert out.grain == 100_000  # lowest idle-rate overall

    def test_threshold_validation(self, report):
        with pytest.raises(ValueError):
            select_by_idle_rate(report, threshold=0.0)
        with pytest.raises(ValueError):
            select_by_idle_rate(report, threshold=1.0)

    def test_rule_name_mentions_threshold(self, report):
        assert "30%" in select_by_idle_rate(report, threshold=0.30).rule


class TestPendingAccessRule:
    def test_picks_minimum_accesses(self, report):
        out = select_by_pending_accesses(report)
        assert out.grain == 100_000
        assert out.within_one_stddev

    def test_paper_claim_structure(self, report):
        """Sec. IV-E: the queue rule lands within 13% of the minimum."""
        out = select_by_pending_accesses(report)
        assert out.slowdown <= 1.13

    def test_tie_broken_by_smaller_grain(self, report):
        report.points.append(make_point(500_000, 2.5, 0.5, 150_000))
        out = select_by_pending_accesses(report)
        assert out.grain == 100_000

    def test_empty_report_raises(self):
        with pytest.raises(ValueError):
            select_by_pending_accesses(CharacterizationReport("hw", 4, "pl"))


class TestOutcome:
    def test_summary_renders(self, report):
        text = select_by_min_time(report).summary()
        assert "grain=10000" in text
        assert "x1.000" in text

    def test_slowdown_infinite_for_zero_best(self):
        rep = CharacterizationReport("hw", 4, "pl")
        rep.points = [make_point(10, 0.0, 0.5, 10.0)]
        out = select_by_min_time(rep)
        assert out.slowdown == float("inf")
