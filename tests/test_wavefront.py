"""Unit tests for the 2-D wavefront workload."""

import numpy as np
import pytest

from repro.apps.wavefront2d import (
    GAP,
    MATCH,
    WavefrontConfig,
    random_sequences,
    run_wavefront,
    serial_alignment_score,
    wavefront_run_fn,
)
from repro.runtime.runtime import RuntimeConfig


def rc(cores=4, seed=1):
    return RuntimeConfig(platform="haswell", num_cores=cores, seed=seed)


class TestConfig:
    def test_tile_counts(self):
        cfg = WavefrontConfig(n=100, tile=30)
        assert cfg.tiles_per_side == 4
        assert cfg.total_tasks == 16

    def test_exact_tiling(self):
        cfg = WavefrontConfig(n=128, tile=32)
        assert cfg.tiles_per_side == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            WavefrontConfig(n=0)
        with pytest.raises(ValueError):
            WavefrontConfig(n=10, tile=11)
        with pytest.raises(ValueError):
            WavefrontConfig(n=10, tile=5, cell_ns=0)


class TestSerialReference:
    def test_identical_sequences_all_match(self):
        a = np.zeros(10, dtype=np.int8)
        assert serial_alignment_score(a, a) == 10 * MATCH

    def test_empty_alignment_against_gaps(self):
        a = np.zeros(5, dtype=np.int8)
        b = np.ones(5, dtype=np.int8) * 2
        # Completely dissimilar: mismatch (-1) beats two gaps (-2), so the
        # optimal score is 5 mismatches.
        assert serial_alignment_score(a, b) == -5

    def test_single_characters(self):
        a = np.array([1], dtype=np.int8)
        assert serial_alignment_score(a, a) == MATCH
        b = np.array([2], dtype=np.int8)
        assert serial_alignment_score(a, b) == -1

    def test_known_prefix_case(self):
        # b is a with one extra trailing element: n matches + 1 gap.
        a = np.array([0, 1, 2, 3], dtype=np.int8)
        b = np.array([0, 1, 2, 3, 1], dtype=np.int8)
        assert serial_alignment_score(a, b) == 4 * MATCH + GAP


class TestTiledCorrectness:
    @pytest.mark.parametrize("tile", [1, 7, 16, 33, 96])
    def test_matches_serial_for_any_tiling(self, tile):
        cfg = WavefrontConfig(n=96, tile=tile, validate=True, seed=9)
        a, b = random_sequences(cfg)
        ref = serial_alignment_score(a, b)
        _, score = run_wavefront(rc(cores=4), cfg)
        assert score == ref

    def test_score_independent_of_cores_and_seed(self):
        cfg = WavefrontConfig(n=64, tile=16, validate=True, seed=2)
        _, s1 = run_wavefront(rc(cores=1, seed=5), cfg)
        _, s2 = run_wavefront(rc(cores=8, seed=99), cfg)
        assert s1 == s2

    def test_task_count(self):
        cfg = WavefrontConfig(n=64, tile=16)
        result, score = run_wavefront(rc(), cfg)
        assert score is None
        assert result.tasks_executed == 16


class TestGranularityShape:
    def test_u_shape_in_tile_size(self):
        run_fn = wavefront_run_fn(n=512, cell_ns=3)
        times = {
            tile: run_fn(rc(cores=8, seed=3), tile).execution_time_ns
            for tile in (4, 32, 512)
        }
        assert times[4] > times[32]       # fine-grained overhead wall
        assert times[512] > times[32]     # pipeline fill / no parallelism

    def test_parallelism_helps_at_good_tile(self):
        run_fn = wavefront_run_fn(n=512, cell_ns=3)
        t1 = run_fn(rc(cores=1, seed=4), 32).execution_time_ns
        t8 = run_fn(rc(cores=8, seed=4), 32).execution_time_ns
        assert t8 < t1

    def test_run_fn_clamps_tile(self):
        run_fn = wavefront_run_fn(n=64)
        result = run_fn(rc(), 1_000_000)
        assert result.tasks_executed == 1
