"""Edge-case tests across modules (gaps found during review)."""

import pytest

from repro.counters.interval import IntervalSampler
from repro.counters.registry import CounterRegistry
from repro.experiments import cli
from repro.runtime.runtime import Runtime, RuntimeConfig
from repro.runtime.task import Task
from repro.runtime.work import FixedWork
from repro.sim.machine import Machine
from repro.sim.platforms import SANDY_BRIDGE


class TestIntervalSamplerEdges:
    def test_zero_length_interval(self):
        reg = CounterRegistry()
        reg.raw("/a/b")
        sampler = IntervalSampler(reg)
        sampler.start(100)
        s = sampler.sample(100)
        assert s.length_ns == 0
        assert s.get("/a/b") == 0

    def test_samples_accumulate(self):
        reg = CounterRegistry()
        sampler = IntervalSampler(reg)
        sampler.start(0)
        for t in (10, 20, 30):
            sampler.sample(t)
        assert [s.end_ns for s in sampler.samples] == [10, 20, 30]


class TestUptimeCounter:
    def test_uptime_tracks_virtual_time(self):
        rt = Runtime(RuntimeConfig(num_cores=1, seed=1))
        rt.spawn(Task(lambda: None, work=FixedWork(5_000)))
        result = rt.run()
        uptime = result.counters.get("/runtime/uptime")
        assert uptime == result.execution_time_ns

    def test_uptime_delta_is_interval_length(self):
        rt = Runtime(RuntimeConfig(num_cores=2, seed=1))
        for _ in range(16):
            rt.spawn(Task(lambda: None, work=FixedWork(40_000)))
        rt.run(sample_interval_ns=50_000)
        # The final tick can fire after the run finished (uptime freezes at
        # finish_ns), so it is exempt.
        for s in rt.sampler.samples[:-1]:
            assert s.get("/runtime/uptime") == pytest.approx(
                s.length_ns, abs=1
            )


class TestMachineEdges:
    def test_partial_second_domain(self):
        # Sandy Bridge: 16 cores, 2 domains of 8; ask for 9 cores.
        m = Machine(SANDY_BRIDGE, 9)
        assert m.num_domains == 2
        assert m.domains[0].core_indices == tuple(range(8))
        assert m.domains[1].core_indices == (8,)
        assert m.same_domain_cores(8) == ()
        assert m.remote_domain_cores(8) == tuple(range(8))


class TestCliEdges:
    def test_exit_code_counts_failing_experiments(self, tmp_path, monkeypatch):
        # Force a shape-check failure by monkeypatching table1's checks.
        from repro.experiments import table1_platforms

        monkeypatch.setattr(
            table1_platforms, "shape_checks", lambda fig: ["synthetic failure"]
        )
        rc = cli.main(["table1", "--scale", "smoke", "--no-plots"])
        assert rc == 1

    def test_markdown_records_failures(self, tmp_path, monkeypatch):
        from repro.experiments import table1_platforms

        monkeypatch.setattr(
            table1_platforms, "shape_checks", lambda fig: ["synthetic failure"]
        )
        path = tmp_path / "r.md"
        cli.main(
            ["table1", "--scale", "smoke", "--no-plots", "--markdown", str(path)]
        )
        assert "FAIL: synthetic failure" in path.read_text()


class TestRunResultEdges:
    def test_empty_run_metrics_are_degenerate(self):
        rt = Runtime(RuntimeConfig(num_cores=2))
        result = rt.run()
        assert result.execution_time_ns == 0
        assert result.tasks_executed == 0
        assert result.idle_rate == 0.0
        assert result.task_duration_ns == 0.0

    def test_spawn_after_run_is_rejected_by_single_use(self):
        rt = Runtime(RuntimeConfig(num_cores=1))
        rt.run()
        with pytest.raises(RuntimeError):
            rt.run()
